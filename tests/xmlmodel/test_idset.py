"""Unit tests for the IdSet sorted-array / bitmask hybrid."""

import pytest

from repro.xmlmodel.idset import DENSITY_FACTOR, IdSet


class TestConstruction:
    def test_empty_and_full(self):
        empty = IdSet.empty(10)
        full = IdSet.full(10)
        assert len(empty) == 0 and not empty
        assert len(full) == 10 and list(full.ids) == list(range(10))
        assert full.bits == (1 << 10) - 1

    def test_from_range(self):
        s = IdSet.from_range(3, 7, universe=10)
        assert list(s.ids) == [3, 4, 5, 6]
        assert s.bits == 0b1111000

    def test_from_range_empty_interval(self):
        assert len(IdSet.from_range(5, 5, universe=10)) == 0
        assert len(IdSet.from_range(7, 3, universe=10)) == 0

    def test_from_iterable_normalises(self):
        s = IdSet.from_iterable([5, 1, 3, 1, 5], universe=8)
        assert list(s.ids) == [1, 3, 5]

    def test_zero_universe(self):
        assert len(IdSet.empty(0)) == 0
        assert len(IdSet.full(0)) == 0


class TestMaterialisations:
    def test_bits_roundtrip(self):
        members = [0, 7, 8, 63, 64, 99]
        s = IdSet.from_sorted(members, universe=100)
        assert IdSet.from_bits(s.bits, 100).tolist() == members

    def test_ids_from_bits_is_sorted(self):
        bits = (1 << 0) | (1 << 42) | (1 << 13)
        assert IdSet.from_bits(bits, 64).tolist() == [0, 13, 42]

    def test_density_threshold(self):
        universe = 8 * DENSITY_FACTOR
        sparse = IdSet.from_sorted(list(range(7)), universe)
        dense = IdSet.from_sorted(list(range(8)), universe)
        assert not sparse.is_dense
        assert dense.is_dense
        # A bitmask-backed set is dense regardless of cardinality.
        assert IdSet.from_bits(1, universe).is_dense


class TestAlgebra:
    @pytest.mark.parametrize("as_bits", [False, True])
    def test_and_or_sub(self, as_bits):
        universe = 200  # large enough that 4-member sets stay sparse
        def build(members):
            s = IdSet.from_iterable(members, universe)
            return IdSet.from_bits(s.bits, universe) if as_bits else s

        a, b = build([1, 2, 3, 50]), build([2, 50, 60])
        assert list((a & b).ids) == [2, 50]
        assert list((a | b).ids) == [1, 2, 3, 50, 60]
        assert list((a - b).ids) == [1, 3]

    def test_mixed_representations_agree(self):
        universe = 100
        sparse = IdSet.from_sorted([4, 9, 77], universe)
        dense = IdSet.from_range(0, 60, universe)
        assert list((sparse & dense).ids) == [4, 9]
        assert len(sparse | dense) == 61

    def test_complement(self):
        s = IdSet.from_iterable([0, 2], universe=4)
        assert list(s.complement().ids) == [1, 3]
        assert s.complement().complement() == s

    def test_universe_mismatch_rejected(self):
        with pytest.raises(ValueError):
            IdSet.full(3) & IdSet.full(4)


class TestProtocol:
    def test_contains_on_both_representations(self):
        members = [2, 5, 11]
        sparse = IdSet.from_sorted(members, universe=16)
        dense = IdSet.from_bits(sparse.bits, universe=16)
        for s in (sparse, dense):
            assert all(i in s for i in members)
            assert 3 not in s
            assert -1 not in s and 99 not in s

    def test_eq_and_hash_cross_representation(self):
        sparse = IdSet.from_sorted([1, 2], universe=8)
        dense = IdSet.from_bits(0b110, universe=8)
        assert sparse == dense
        assert hash(sparse) == hash(dense)
        assert sparse != IdSet.from_sorted([1, 2], universe=9)

    def test_iteration_is_sorted(self):
        s = IdSet.from_bits((1 << 30) | (1 << 2) | (1 << 17), universe=40)
        assert list(s) == [2, 17, 30]
