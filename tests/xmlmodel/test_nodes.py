"""Unit tests for the node classes of the XPath data model."""

import pytest

from repro.xmlmodel.document import Document, DocumentBuilder, build_tree
from repro.xmlmodel.nodes import (
    AttributeNode,
    CommentNode,
    ElementNode,
    NodeType,
    ProcessingInstructionNode,
    RootNode,
    TextNode,
    sort_document_order,
)


def small_tree():
    builder = DocumentBuilder()
    builder.start_element("a", {"id": "1"})
    builder.start_element("b")
    builder.text("hello")
    builder.end_element()
    builder.add_element("c")
    builder.end_element()
    return builder.finish()


class TestNodeBasics:
    def test_node_types(self):
        assert RootNode().node_type is NodeType.ROOT
        assert ElementNode("a").node_type is NodeType.ELEMENT
        assert TextNode("x").node_type is NodeType.TEXT
        assert CommentNode("x").node_type is NodeType.COMMENT
        assert AttributeNode("k", "v").node_type is NodeType.ATTRIBUTE
        assert (
            ProcessingInstructionNode("t").node_type is NodeType.PROCESSING_INSTRUCTION
        )

    def test_append_child_sets_parent(self):
        parent = ElementNode("a")
        child = ElementNode("b")
        parent.append_child(child)
        assert child.parent is parent
        assert parent.children == [child]

    def test_append_child_rejects_reparenting(self):
        parent = ElementNode("a")
        child = ElementNode("b")
        parent.append_child(child)
        with pytest.raises(ValueError):
            ElementNode("c").append_child(child)

    def test_is_element_and_is_root(self):
        assert ElementNode("a").is_element()
        assert not ElementNode("a").is_root()
        assert RootNode().is_root()

    def test_name(self):
        assert ElementNode("book").name() == "book"
        assert AttributeNode("year", "2003").name() == "year"
        assert ProcessingInstructionNode("target", "data").name() == "target"
        assert TextNode("x").name() == ""
        assert RootNode().name() == ""

    def test_equality_is_identity(self):
        first, second = ElementNode("a"), ElementNode("a")
        assert first == first
        assert first != second
        assert len({first, second}) == 2


class TestTreeNavigation:
    def test_iter_descendants_document_order(self):
        document = small_tree()
        root_element = document.root.document_element()
        tags = [
            node.tag if isinstance(node, ElementNode) else "#text"
            for node in root_element.iter_descendants()
        ]
        assert tags == ["b", "#text", "c"]

    def test_iter_descendants_or_self_includes_self(self):
        document = small_tree()
        root_element = document.root.document_element()
        nodes = list(root_element.iter_descendants_or_self())
        assert nodes[0] is root_element

    def test_iter_ancestors_nearest_first(self):
        document = small_tree()
        text = [n for n in document.nodes if isinstance(n, TextNode)][0]
        ancestors = list(text.iter_ancestors())
        assert [getattr(a, "tag", "#root") for a in ancestors] == ["b", "a", "#root"]

    def test_root_returns_top(self):
        document = small_tree()
        deepest = document.nodes[-1]
        assert deepest.root() is document.root

    def test_child_index(self):
        document = small_tree()
        a = document.root.document_element()
        assert a.children[0].child_index() == 0
        assert a.children[1].child_index() == 1
        assert document.root.child_index() == 0


class TestStringValue:
    def test_element_string_value_concatenates_descendant_text(self):
        document = build_tree(("a", [("b", ["x"]), ("c", ["y", ("d", ["z"])])]))
        assert document.root.document_element().string_value() == "xyz"

    def test_attribute_string_value(self):
        assert AttributeNode("k", "v").string_value() == "v"

    def test_text_comment_pi_string_values(self):
        assert TextNode("t").string_value() == "t"
        assert CommentNode("c").string_value() == "c"
        assert ProcessingInstructionNode("pi", "data").string_value() == "data"


class TestElementAttributes:
    def test_set_and_get_attribute(self):
        element = ElementNode("a")
        element.set_attribute("id", "1")
        assert element.get_attribute("id") == "1"
        assert element.get_attribute("missing") is None

    def test_set_attribute_overwrites(self):
        element = ElementNode("a", {"id": "1"})
        element.set_attribute("id", "2")
        assert element.get_attribute("id") == "2"
        assert len(element.attributes) == 1

    def test_element_children_excludes_text(self):
        document = small_tree()
        a = document.root.document_element()
        assert [child.tag for child in a.element_children()] == ["b", "c"]


class TestDocumentOrder:
    def test_sort_document_order_dedups_and_sorts(self):
        document = small_tree()
        nodes = list(document.nodes)
        shuffled = nodes[::-1] + nodes
        assert sort_document_order(shuffled) == nodes

    def test_order_comparison_requires_frozen_tree(self):
        loose = ElementNode("a")
        other = ElementNode("b")
        with pytest.raises(ValueError):
            _ = loose < other

    def test_order_comparison_after_freeze(self):
        document = small_tree()
        assert document.nodes[0] < document.nodes[1]
