"""Unit tests for the synthetic document generators."""

import pytest

from repro.xmlmodel.generators import (
    auction_document,
    caterpillar_document,
    chain_document,
    complete_tree_document,
    labelled_list_document,
    random_document,
    wide_document,
)
from repro.xmlmodel.nodes import ElementNode


class TestChainAndWide:
    def test_chain_depth(self):
        document = chain_document(5)
        # root + 5 chained elements
        assert document.size == 6
        node = document.root.document_element()
        depth = 1
        while node.element_children():
            node = node.element_children()[0]
            depth += 1
        assert depth == 5

    def test_chain_requires_positive_depth(self):
        with pytest.raises(ValueError):
            chain_document(0)

    def test_wide_document_children(self):
        document = wide_document(7)
        root_element = document.root.document_element()
        assert len(root_element.element_children()) == 7
        assert root_element.element_children()[3].get_attribute("index") == "3"

    def test_wide_document_zero_width(self):
        assert wide_document(0).root.document_element().element_children() == []


class TestCompleteTree:
    def test_node_count(self):
        document = complete_tree_document(2, 4)
        # 1 + 2 + 4 + 8 = 15 elements + root
        assert len(document.elements) == 15

    def test_tags_cycle_by_level(self):
        document = complete_tree_document(2, 3, tags=("x", "y", "z"))
        root_element = document.root.document_element()
        assert root_element.tag == "x"
        assert {child.tag for child in root_element.element_children()} == {"y"}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            complete_tree_document(0, 3)
        with pytest.raises(ValueError):
            complete_tree_document(2, 0)


class TestCaterpillar:
    def test_alternating_tags(self):
        document = caterpillar_document(6)
        children = document.root.document_element().element_children()
        assert [child.tag for child in children] == ["a", "b", "a", "b", "a", "b"]

    def test_requires_positive_length(self):
        with pytest.raises(ValueError):
            caterpillar_document(0)


class TestRandomDocument:
    def test_deterministic_per_seed(self):
        from repro.xmlmodel.serialize import serialize

        assert serialize(random_document(40, seed=3)) == serialize(random_document(40, seed=3))
        assert serialize(random_document(40, seed=3)) != serialize(random_document(40, seed=4))

    def test_respects_budget_roughly(self):
        document = random_document(50, seed=1)
        assert 1 <= len(document.elements) <= 51

    def test_tags_from_alphabet(self):
        document = random_document(30, seed=2, tags=("q", "r"))
        assert {element.tag for element in document.elements} <= {"q", "r"}

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            random_document(0)


class TestLabelledList:
    def test_labels_become_children(self):
        document = labelled_list_document([["G", "R"], ["G"]])
        nodes = document.elements_with_tag("node")
        assert len(nodes) == 2
        first_labels = {child.get_attribute("name") for child in nodes[0].element_children()}
        assert first_labels == {"G", "R"}


class TestAuctionDocument:
    def test_structure(self):
        document = auction_document(sellers=3, items_per_seller=2, seed=1)
        assert len(document.elements_with_tag("person")) == 3
        assert len(document.elements_with_tag("open_auction")) == 6
        assert document.elements_with_tag("site")

    def test_deterministic(self):
        from repro.xmlmodel.serialize import serialize

        assert serialize(auction_document(seed=5)) == serialize(auction_document(seed=5))

    def test_items_reference_regions(self):
        document = auction_document(sellers=2, items_per_seller=2, seed=9)
        regions = {"europe", "namerica", "asia"}
        for item in document.elements_with_tag("item"):
            assert item.get_attribute("region") in regions
