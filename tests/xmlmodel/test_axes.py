"""Unit tests for the thirteen axes and node tests."""

import pytest

from repro.errors import XPathEvaluationError
from repro.xmlmodel.axes import (
    AXIS_NAMES,
    CORE_XPATH_AXES,
    apply_axis_to_set,
    axis_nodes,
    axis_step,
    inverse_axis,
    is_reverse_axis,
    node_test_matches,
    principal_node_type,
)
from repro.xmlmodel.nodes import AttributeNode, ElementNode
from repro.xmlmodel.parser import parse_xml

DOC = "<a><b id='1'><c/><d/></b><b id='2'/><e><f/><g><h/></g></e></a>"


@pytest.fixture
def document():
    return parse_xml(DOC)


def tags(nodes):
    return [getattr(node, "tag", getattr(node, "attr_name", node.node_type.value)) for node in nodes]


def element(document, tag):
    return document.elements_with_tag(tag)[0]


class TestForwardAxes:
    def test_child(self, document):
        assert tags(axis_nodes(element(document, "a"), "child")) == ["b", "b", "e"]

    def test_descendant(self, document):
        assert tags(axis_nodes(element(document, "e"), "descendant")) == ["f", "g", "h"]

    def test_descendant_or_self(self, document):
        assert tags(axis_nodes(element(document, "e"), "descendant-or-self")) == [
            "e",
            "f",
            "g",
            "h",
        ]

    def test_self(self, document):
        assert tags(axis_nodes(element(document, "c"), "self")) == ["c"]

    def test_following_sibling(self, document):
        first_b = document.elements_with_tag("b")[0]
        assert tags(axis_nodes(first_b, "following-sibling")) == ["b", "e"]

    def test_following(self, document):
        assert tags(axis_nodes(element(document, "c"), "following")) == [
            "d",
            "b",
            "e",
            "f",
            "g",
            "h",
        ]

    def test_attribute_axis(self, document):
        first_b = document.elements_with_tag("b")[0]
        attributes = axis_nodes(first_b, "attribute")
        assert [a.attr_name for a in attributes] == ["id"]


class TestReverseAxes:
    def test_parent(self, document):
        assert tags(axis_nodes(element(document, "c"), "parent")) == ["b"]
        assert axis_nodes(document.root, "parent") == []

    def test_ancestor_nearest_first(self, document):
        assert tags(axis_nodes(element(document, "h"), "ancestor")) == ["g", "e", "a", "root"]

    def test_ancestor_or_self(self, document):
        assert tags(axis_nodes(element(document, "h"), "ancestor-or-self"))[0] == "h"

    def test_preceding_sibling_reverse_document_order(self, document):
        e = element(document, "e")
        assert tags(axis_nodes(e, "preceding-sibling")) == ["b", "b"]
        orders = [node.order for node in axis_nodes(e, "preceding-sibling")]
        assert orders == sorted(orders, reverse=True)

    def test_preceding_excludes_ancestors(self, document):
        h = element(document, "h")
        preceding_tags = tags(axis_nodes(h, "preceding"))
        assert "a" not in preceding_tags and "e" not in preceding_tags
        assert preceding_tags == ["f", "b", "d", "c", "b"]

    def test_attribute_node_parent(self, document):
        first_b = document.elements_with_tag("b")[0]
        attribute = axis_nodes(first_b, "attribute")[0]
        assert axis_nodes(attribute, "parent") == [first_b]
        assert axis_nodes(attribute, "following-sibling") == []


class TestAxisProperties:
    def test_axis_names_cover_core(self):
        assert "attribute" in AXIS_NAMES
        assert "attribute" not in CORE_XPATH_AXES

    def test_is_reverse_axis(self):
        assert is_reverse_axis("ancestor")
        assert is_reverse_axis("preceding-sibling")
        assert not is_reverse_axis("child")

    def test_inverse_axis_pairs(self):
        pairs = [
            ("child", "parent"),
            ("descendant", "ancestor"),
            ("descendant-or-self", "ancestor-or-self"),
            ("following", "preceding"),
            ("following-sibling", "preceding-sibling"),
            ("self", "self"),
        ]
        for axis, inverse in pairs:
            assert inverse_axis(axis) == inverse
            assert inverse_axis(inverse) == axis

    def test_inverse_of_attribute_axis_raises(self):
        with pytest.raises(XPathEvaluationError):
            inverse_axis("attribute")

    def test_unknown_axis_raises(self, document):
        with pytest.raises(XPathEvaluationError):
            axis_nodes(document.root, "sideways")

    def test_principal_node_type(self):
        assert principal_node_type("child") == "element"
        assert principal_node_type("attribute") == "attribute"

    def test_inverse_axis_roundtrip_semantics(self, document):
        # y in axis(x) iff x in inverse_axis(y), for every element pair.
        for axis in ("child", "descendant", "following", "following-sibling"):
            inverse = inverse_axis(axis)
            for x in document.elements:
                for y in axis_nodes(x, axis):
                    assert x in axis_nodes(y, inverse)


class TestNodeTests:
    def test_name_test(self, document):
        b = document.elements_with_tag("b")[0]
        assert node_test_matches(b, "child", "b")
        assert not node_test_matches(b, "child", "c")

    def test_wildcard_matches_elements_only(self, document):
        text_doc = parse_xml("<a>txt<b/></a>")
        a = text_doc.root.document_element()
        children = axis_nodes(a, "child")
        assert [node_test_matches(child, "child", "*") for child in children] == [False, True]

    def test_node_type_tests(self):
        doc = parse_xml("<a>txt<!--c--><?pi d?><b/></a>")
        a = doc.root.document_element()
        text, comment, pi, b = a.children
        assert node_test_matches(text, "child", "text()")
        assert node_test_matches(comment, "child", "comment()")
        assert node_test_matches(pi, "child", "processing-instruction()")
        assert node_test_matches(pi, "child", "processing-instruction('pi')")
        assert not node_test_matches(pi, "child", "processing-instruction('other')")
        assert all(node_test_matches(child, "child", "node()") for child in a.children)

    def test_attribute_axis_principal_type(self, document):
        b = document.elements_with_tag("b")[0]
        attribute = b.attributes[0]
        assert node_test_matches(attribute, "attribute", "id")
        assert node_test_matches(attribute, "attribute", "*")
        assert not node_test_matches(attribute, "child", "id")

    def test_axis_step_combines_axis_and_test(self, document):
        a = element(document, "a")
        assert tags(axis_step(a, "child", "b")) == ["b", "b"]
        assert tags(axis_step(a, "descendant", "*")) == ["b", "c", "d", "b", "e", "f", "g", "h"]


class TestSetApplication:
    def test_apply_axis_to_set_document_order_no_duplicates(self, document):
        bs = document.elements_with_tag("b")
        result = apply_axis_to_set(bs, "parent", "*")
        assert tags(result) == ["a"]

    def test_apply_axis_to_set_with_node_test(self, document):
        result = apply_axis_to_set([element(document, "a")], "descendant", "b")
        assert tags(result) == ["b", "b"]
