"""Backend selection: env override, numpy fallback, and surfacing.

The selection contract (``docs/kernels.md``): ``REPRO_KERNEL_BACKEND``
wins and is resolved strictly (unknown names and an unsatisfiable
``vectorized`` raise :class:`~repro.errors.KernelBackendError`); without
an override the probe picks ``vectorized`` when numpy imports and falls
back to ``pure`` when it does not; and selecting ``pure`` — explicitly
or by fallback — never imports numpy at all.
"""

import importlib
import os
import subprocess
import sys

import pytest

import repro.xmlmodel.kernels as kernels
from repro.errors import KernelBackendError


def _reload(env_value, hide_numpy=False):
    """Re-run import-time selection under a controlled environment.

    Reloading re-executes the module body in the same module ``__dict__``,
    so function references imported elsewhere observe the re-selected
    ``_active`` global.  ``sys.modules["numpy"] = None`` is the standard
    way to make ``import numpy`` raise ImportError in-process.
    """
    saved_env = os.environ.get(kernels.BACKEND_ENV_VAR)
    saved_numpy = sys.modules.get("numpy")
    try:
        if env_value is None:
            os.environ.pop(kernels.BACKEND_ENV_VAR, None)
        else:
            os.environ[kernels.BACKEND_ENV_VAR] = env_value
        if hide_numpy:
            sys.modules["numpy"] = None
        importlib.reload(kernels)
        return kernels.active_backend().name
    finally:
        if saved_env is None:
            os.environ.pop(kernels.BACKEND_ENV_VAR, None)
        else:
            os.environ[kernels.BACKEND_ENV_VAR] = saved_env
        if hide_numpy:
            if saved_numpy is None:
                sys.modules.pop("numpy", None)
            else:
                sys.modules["numpy"] = saved_numpy
        importlib.reload(kernels)


class TestEnvOverride:
    def test_pure_is_honored(self):
        assert _reload("pure") == "pure"

    def test_vectorized_is_honored(self):
        pytest.importorskip("numpy")
        assert _reload("vectorized") == "vectorized"

    def test_whitespace_is_stripped(self):
        assert _reload("  pure  ") == "pure"

    def test_empty_value_means_auto(self):
        expected = "vectorized" if "vectorized" in kernels.available_backends() else "pure"
        assert _reload("") == expected

    def test_unknown_name_raises_typed_error(self):
        with pytest.raises(KernelBackendError, match="unknown kernel backend"):
            _reload("cython")

    def test_vectorized_without_numpy_raises(self):
        with pytest.raises(KernelBackendError, match="requires numpy"):
            _reload("vectorized", hide_numpy=True)


class TestAutoSelection:
    def test_numpy_present_picks_vectorized(self):
        pytest.importorskip("numpy")
        assert _reload(None) == "vectorized"

    def test_numpy_missing_falls_back_to_pure(self):
        assert _reload(None, hide_numpy=True) == "pure"

    def test_available_backends_reports_numpy_gate(self):
        names = kernels.available_backends()
        assert names[0] == "pure"
        assert set(names) <= set(kernels.BACKEND_NAMES)


class TestPurePathNeverImportsNumpy:
    def test_subprocess_pure_keeps_numpy_unimported(self):
        """Under =pure, evaluating a full query must not pull numpy in."""
        code = (
            "import sys\n"
            "from repro.xmlmodel import parse_xml\n"
            "from repro.evaluation.api import evaluate\n"
            "doc = parse_xml('<a><b><c/></b><c/></a>')\n"
            "nodes = evaluate('//c', doc, engine='core')\n"
            "assert len(nodes) == 2, nodes\n"
            "from repro.xmlmodel.kernels import active_backend\n"
            "assert active_backend().name == 'pure'\n"
            "assert 'numpy' not in sys.modules, 'pure path imported numpy'\n"
            "print('OK')\n"
        )
        env = dict(os.environ)
        env[kernels.BACKEND_ENV_VAR] = "pure"
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "OK"


class TestUseBackend:
    def test_swap_and_restore(self):
        before = kernels.active_backend().name
        with kernels.use_backend("pure") as backend:
            assert backend.name == "pure"
            assert kernels.active_backend() is backend
        assert kernels.active_backend().name == before

    def test_restores_on_error(self):
        before = kernels.active_backend().name
        with pytest.raises(RuntimeError):
            with kernels.use_backend("pure"):
                raise RuntimeError("boom")
        assert kernels.active_backend().name == before

    def test_unknown_name_raises_without_swapping(self):
        before = kernels.active_backend().name
        with pytest.raises(KernelBackendError):
            with kernels.use_backend("gpu"):
                pass  # pragma: no cover - never entered
        assert kernels.active_backend().name == before


class TestSurfacing:
    def test_engine_stats_reports_backend(self):
        from repro.engine import XPathEngine

        engine = XPathEngine()
        engine.evaluate("//a", "<a/>")
        stats = engine.stats()
        assert stats.kernel_backend == kernels.active_backend().name
        assert f"kernel backend     {stats.kernel_backend}" in stats.describe() or (
            "kernel backend" in stats.describe()
        )

    def test_stats_follows_use_backend(self):
        from repro.engine import XPathEngine

        engine = XPathEngine()
        with kernels.use_backend("pure"):
            assert engine.stats().kernel_backend == "pure"
