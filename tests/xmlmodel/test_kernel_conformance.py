"""Backend-differential conformance suite for the kernel backends.

Every kernel operation — the sorted-sequence set algebra, the ids↔bits
conversions and the axis kernels — is run under every resolvable backend
over adversarial id patterns (empty, singleton, all-ids, dense vs sparse
around the density threshold, bitmask byte boundaries, the max-id edge)
and must produce *identical memberships*: the same sorted ids and the
same bitmask.  The axis kernels are additionally checked against the
untouched raw-id ``set`` path (:meth:`DocumentIndex.axis_id_set`), which
predates the backend split and serves as the independent oracle.
"""

import pytest

from repro.xmlmodel import (
    chain_document,
    complete_tree_document,
    parse_xml,
    wide_document,
)
from repro.xmlmodel.idset import DENSITY_FACTOR, IdSet
from repro.xmlmodel.kernels import (
    available_backends,
    backend_by_name,
    use_backend,
)

BACKENDS = available_backends()

#: Universes chosen to straddle the bitmask byte boundaries (1, 7..9,
#: 63..65) plus a round non-boundary size.
UNIVERSES = (1, 7, 8, 9, 63, 64, 65, 100)


def _patterns(universe):
    """Adversarial id patterns over ``[0, universe)``, deduplicated."""
    dense_count = max(1, -(-universe // DENSITY_FACTOR))  # ceil: just dense
    sparse_count = max(1, universe // DENSITY_FACTOR - 1)  # just sparse
    candidates = {
        "empty": [],
        "first": [0],
        "last": [universe - 1],
        "all": list(range(universe)),
        "evens": list(range(0, universe, 2)),
        "ends": sorted({0, universe - 1}),
        "just-dense": list(range(dense_count)),
        "just-sparse": list(range(0, universe, max(1, universe // sparse_count)))[
            :sparse_count
        ],
        "high-block": list(range(universe - max(1, universe // 4), universe)),
    }
    seen = set()
    for label, ids in sorted(candidates.items()):
        key = tuple(ids)
        if key in seen:
            continue
        seen.add(key)
        yield label, ids


def _pairs(universe):
    named = list(_patterns(universe))
    for label_a, a in named:
        for label_b, b in named:
            yield f"{label_a}&{label_b}", a, b


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("universe", UNIVERSES)
def test_algebra_matches_pure(backend_name, universe):
    """intersect/union/difference agree with pure on every operand pair."""
    pure = backend_by_name("pure")
    backend = backend_by_name(backend_name)
    for label, a, b in _pairs(universe):
        for op in ("intersect_sorted", "union_sorted", "difference_sorted"):
            expected = list(getattr(pure, op)(list(a), list(b)))
            got = getattr(backend, op)(
                backend.prepare_sorted(list(a)), backend.prepare_sorted(list(b))
            )
            assert list(got) == expected, (backend_name, op, universe, label)


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("universe", UNIVERSES)
def test_conversions_match_pure(backend_name, universe):
    """bits_from_ids / ids_from_bits agree with pure and roundtrip."""
    pure = backend_by_name("pure")
    backend = backend_by_name(backend_name)
    for label, ids in _patterns(universe):
        expected_bits = pure.bits_from_ids(list(ids), universe)
        got_bits = backend.bits_from_ids(backend.prepare_sorted(list(ids)), universe)
        assert got_bits == expected_bits, (backend_name, universe, label)
        # Range-shaped inputs take a dedicated shift path in both backends.
        if ids and ids == list(range(ids[0], ids[-1] + 1)):
            as_range = range(ids[0], ids[-1] + 1)
            assert backend.bits_from_ids(as_range, universe) == expected_bits
        back = backend.ids_from_bits(got_bits, universe)
        assert list(back) == list(ids), (backend_name, universe, label)


def _documents():
    return {
        "mixed": parse_xml(
            "<a><b x='1'><c/><d/><c/></b><b><c><e/><e/></c></b>"
            "text<c/><f><b><c/></b><!--note--><?pi data?></f></a>"
        ),
        "chain-31": chain_document(31),
        "wide-30": wide_document(30),
        "complete-2x5": complete_tree_document(2, 5),
    }


AXES = (
    "self",
    "child",
    "parent",
    "descendant",
    "descendant-or-self",
    "ancestor",
    "ancestor-or-self",
    "following",
    "following-sibling",
    "preceding",
    "preceding-sibling",
)


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("doc_label", sorted(_documents()))
def test_axis_kernels_match_raw_id_oracle(backend_name, doc_label):
    """Every axis kernel equals the raw-id set path on every pattern."""
    index = _documents()[doc_label].index
    size = index.size
    with use_backend(backend_name):
        for pattern_label, ids in _patterns(size):
            frontier = IdSet.from_sorted(list(ids), size)
            for axis in AXES:
                result = index.axis_idset(axis, frontier)
                oracle = index.axis_id_set(axis, set(ids))
                assert result.tolist() == sorted(oracle), (
                    backend_name,
                    doc_label,
                    pattern_label,
                    axis,
                )
                assert result.universe == size


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("doc_label", sorted(_documents()))
def test_node_test_partitions_agree(backend_name, doc_label):
    """test_idset / filter_idset memberships are backend-independent."""
    document = _documents()[doc_label]
    index = document.index
    size = index.size
    tags = sorted(index.ids_by_tag) + ["nosuchtag"]
    tests = tags + ["*", "node()", "text()", "comment()",
                    "processing-instruction()"]
    with use_backend("pure"):
        expected_partitions = {
            t: (p.tolist() if p is not None else None)
            for t, p in ((t, index.test_idset(t)) for t in tests)
        }
        expected_filtered = {
            t: index.filter_idset(IdSet.full(size), "child", t).tolist()
            for t in tests
        }
    with use_backend(backend_name):
        for node_test in tests:
            partition = index.test_idset(node_test)
            got = partition.tolist() if partition is not None else None
            assert got == expected_partitions[node_test], (
                backend_name, doc_label, node_test,
            )
            filtered = index.filter_idset(IdSet.full(size), "child", node_test)
            assert filtered.tolist() == expected_filtered[node_test]


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_idset_algebra_end_to_end(backend_name):
    """IdSet operators produce identical memberships under every backend."""
    universe = 72  # straddles a byte boundary
    with use_backend(backend_name):
        sparse = IdSet.from_sorted([1, 9, 40, 71], universe)
        dense = IdSet.from_range(8, 66, universe)
        singleton = IdSet.from_sorted([71], universe)
        empty = IdSet.empty(universe)
        assert (sparse & dense).tolist() == [9, 40]
        assert (sparse | singleton).tolist() == [1, 9, 40, 71]
        assert (sparse - dense).tolist() == [1, 71]
        assert (dense - sparse).tolist() == [i for i in range(8, 66) if i not in (9, 40)]
        assert sparse.complement().tolist() == [
            i for i in range(universe) if i not in (1, 9, 40, 71)
        ]
        assert (empty | sparse).tolist() == [1, 9, 40, 71]
        assert (empty & dense).tolist() == []
        # ids↔bits roundtrips through the backend conversion kernels.
        assert IdSet.from_bits(sparse.bits, universe).tolist() == sparse.tolist()
        assert IdSet.from_bits(dense.bits, universe) == dense
