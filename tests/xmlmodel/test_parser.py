"""Unit tests for the from-scratch XML parser."""

import pytest

from repro.errors import XMLParseError
from repro.xmlmodel.nodes import CommentNode, ElementNode, ProcessingInstructionNode, TextNode
from repro.xmlmodel.parser import parse_xml


class TestBasicParsing:
    def test_single_empty_element(self):
        document = parse_xml("<a/>")
        assert document.root.document_element().tag == "a"
        assert document.size == 2  # root + a

    def test_nested_elements(self):
        document = parse_xml("<a><b><c/></b><d/></a>")
        a = document.root.document_element()
        assert [child.tag for child in a.element_children()] == ["b", "d"]

    def test_attributes_double_and_single_quotes(self):
        document = parse_xml("""<a x="1" y='two'/>""")
        a = document.root.document_element()
        assert a.get_attribute("x") == "1"
        assert a.get_attribute("y") == "two"

    def test_text_content(self):
        document = parse_xml("<a>hello <b>world</b>!</a>")
        assert document.root.string_value() == "hello world!"

    def test_whitespace_only_text_dropped_by_default(self):
        document = parse_xml("<a>\n  <b/>\n</a>")
        a = document.root.document_element()
        assert all(not isinstance(child, TextNode) for child in a.children)

    def test_whitespace_kept_when_requested(self):
        document = parse_xml("<a>\n  <b/>\n</a>", keep_whitespace_text=True)
        a = document.root.document_element()
        assert any(isinstance(child, TextNode) for child in a.children)

    def test_comment_and_processing_instruction(self):
        document = parse_xml("<a><!--note--><?target data?></a>")
        a = document.root.document_element()
        assert isinstance(a.children[0], CommentNode)
        assert a.children[0].text == "note"
        assert isinstance(a.children[1], ProcessingInstructionNode)
        assert a.children[1].target == "target"
        assert a.children[1].data == "data"

    def test_xml_declaration_and_doctype_skipped(self):
        document = parse_xml('<?xml version="1.0"?><!DOCTYPE a []><a/>')
        assert document.root.document_element().tag == "a"

    def test_cdata_section(self):
        document = parse_xml("<a><![CDATA[1 < 2 & more]]></a>")
        assert document.root.string_value() == "1 < 2 & more"

    def test_namespaced_names_kept_verbatim(self):
        document = parse_xml('<ns:a xmlns:ns="http://example.org"><ns:b/></ns:a>')
        a = document.root.document_element()
        assert a.tag == "ns:a"
        assert a.get_attribute("xmlns:ns") == "http://example.org"


class TestEntityHandling:
    def test_predefined_entities_in_text(self):
        document = parse_xml("<a>&lt;tag&gt; &amp; &quot;x&quot; &apos;y&apos;</a>")
        assert document.root.string_value() == "<tag> & \"x\" 'y'"

    def test_character_references(self):
        document = parse_xml("<a>&#65;&#x42;</a>")
        assert document.root.string_value() == "AB"

    def test_entities_in_attributes(self):
        document = parse_xml('<a t="a &amp; b"/>')
        assert document.root.document_element().get_attribute("t") == "a & b"

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLParseError):
            parse_xml("<a>&unknown;</a>")


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "just text",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a x=1/>",
            "<a x='1' x='2'/>",
            "<a/><b/>",
            "<a>text</a>trailing text",
            "<a><!--unterminated</a>",
            "<a attr='unterminated/>",
        ],
    )
    def test_malformed_documents_raise(self, text):
        with pytest.raises(XMLParseError):
            parse_xml(text)

    def test_error_reports_offset(self):
        with pytest.raises(XMLParseError) as excinfo:
            parse_xml("<a><b></c></a>")
        assert excinfo.value.position is not None

    def test_character_data_outside_document_element(self):
        with pytest.raises(XMLParseError):
            parse_xml("oops<a/>")


class TestRoundTripWithSerializer:
    def test_parse_serialize_parse_is_stable(self):
        from repro.xmlmodel.serialize import serialize

        source = '<a x="1&amp;2"><b>text &lt;here&gt;</b><c/><!--note--></a>'
        first = parse_xml(source)
        text = serialize(first)
        second = parse_xml(text)
        assert serialize(second) == text
