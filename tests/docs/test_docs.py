"""The documentation stays true: code fences execute, links resolve.

Five guarantees over ``README.md`` and ``docs/*.md`` (this is the suite
the CI ``docs`` job runs):

* every fenced ```python`` block is executed, doctest-style, in a fresh
  namespace — examples that rot fail the build (illustrative, non-code
  fences use ```text`` and are skipped);
* every relative markdown link between the README and ``docs/`` resolves
  to an existing file;
* every ``#anchor`` in a relative (or in-page) link resolves to a real
  heading of its target, under GitHub's slug rules — renaming a section
  breaks the build, not the reader;
* the ``docs/`` pages form a connected set: each page is linked from the
  README *and* cross-linked from at least one sibling page, and each
  page links back into the set (no orphans, no dead ends);
* the docstring examples of the public API modules pass under
  :mod:`doctest` (the README points readers at them).
"""

import doctest
import importlib
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

_FENCE = re.compile(r"^```(\w*)\s*$")
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

#: Public-API modules whose docstring examples the README advertises.
DOCTESTED_MODULES = (
    "repro.engine.engine",
    "repro.evaluation.api",
    "repro.evaluation.core",
    "repro.planner.batch",
    "repro.planner.cache",
    "repro.planner.plan",
    "repro.serving.wire",
    "repro.store.corpus",
    "repro.telemetry.exposition",
    "repro.telemetry.metrics",
    "repro.telemetry.slowlog",
    "repro.telemetry.trace",
    "repro.xmlmodel.document",
    "repro.xmlmodel.idset",
    "repro.xmlmodel.index",
    "repro.xmlmodel.kernels",
)


def _fences(path, language):
    """Yield (start_line, code) for every fenced block of ``language``."""
    in_fence = False
    keep = False
    start = 0
    buffer: list[str] = []
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = _FENCE.match(line.strip())
        if match and not in_fence:
            in_fence = True
            keep = match.group(1) == language
            start = number
            buffer = []
        elif match and in_fence:
            if keep:
                yield start, "\n".join(buffer)
            in_fence = False
        elif in_fence and keep:
            buffer.append(line)


def _python_fence_cases():
    for path in DOC_FILES:
        for start, code in _fences(path, "python"):
            yield pytest.param(
                path, start, code, id=f"{path.name}:L{start}"
            )


@pytest.mark.parametrize("path,start,code", list(_python_fence_cases()))
def test_python_fences_execute(path, start, code):
    namespace = {"__name__": f"docfence_{path.stem}_{start}"}
    try:
        exec(compile(code, f"{path.name}:fence@L{start}", "exec"), namespace)
    except Exception as error:  # pragma: no cover - failure reporting
        pytest.fail(f"{path.name} code fence at line {start} failed: {error!r}")


def test_there_are_python_fences_to_check():
    # Guard against the extractor silently matching nothing.
    assert len(list(_python_fence_cases())) >= 5


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(path):
    broken = []
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.name} has broken relative links: {broken}"


def _github_slug(heading):
    """GitHub's anchor slug for a markdown heading (inline markup stripped)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code keeps its text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep label
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def _anchors(path):
    """Every heading anchor ``path`` exposes (with GitHub's -1, -2 dedup)."""
    seen: dict[str, int] = {}
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        match = None if in_fence else _HEADING.match(line)
        if not match:
            continue
        slug = _github_slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_anchor_links_resolve(path):
    """Every ``target.md#anchor`` (and in-page ``#anchor``) names a heading."""
    dangling = []
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if "#" not in target:
            continue
        file_part, anchor = target.split("#", 1)
        target_path = path if not file_part else (path.parent / file_part).resolve()
        if not (target_path.exists() and target_path.suffix == ".md"):
            continue  # existence is test_relative_links_resolve's job
        if anchor not in _anchors(target_path):
            dangling.append(target)
    assert not dangling, f"{path.name} has dangling anchors: {dangling}"


def test_doc_set_is_fully_cross_linked():
    """docs↔docs connectivity: no orphan pages, no dead-end pages.

    Every ``docs/*.md`` must be linked from the README **and** from at
    least one sibling docs page, and must itself link to at least one
    sibling — the doc set reads as one navigable web, not a pile of
    files the README happens to mention.
    """
    doc_names = sorted(
        path.name for path in DOC_FILES if path.parent.name == "docs"
    )
    readme_targets = _LINK.findall((REPO_ROOT / "README.md").read_text("utf-8"))
    outgoing = {}
    for name in doc_names:
        targets = _LINK.findall((REPO_ROOT / "docs" / name).read_text("utf-8"))
        outgoing[name] = {
            target.split("#", 1)[0].removeprefix("./")
            for target in targets
            if target.split("#", 1)[0].endswith(".md")
        }
    for name in doc_names:
        assert f"docs/{name}" in readme_targets, f"README must link docs/{name}"
        siblings_linking_here = [
            other for other in doc_names
            if other != name and name in outgoing[other]
        ]
        assert siblings_linking_here, f"docs/{name} is an orphan within docs/"
        assert outgoing[name] & set(doc_names), (
            f"docs/{name} is a dead end: it links to no sibling docs page"
        )


@pytest.mark.parametrize("module_name", DOCTESTED_MODULES)
def test_docstring_examples(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{module_name}: {result.failed} doctest failure(s)"
    assert result.attempted > 0, f"{module_name} advertises no worked examples"
