"""The documentation stays true: code fences execute, links resolve.

Three guarantees over ``README.md`` and ``docs/*.md`` (this is the suite
the CI ``docs`` job runs):

* every fenced ```python`` block is executed, doctest-style, in a fresh
  namespace — examples that rot fail the build (illustrative, non-code
  fences use ```text`` and are skipped);
* every relative markdown link between the README and ``docs/`` resolves
  to an existing file;
* the docstring examples of the public API modules pass under
  :mod:`doctest` (the README points readers at them).
"""

import doctest
import importlib
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

_FENCE = re.compile(r"^```(\w*)\s*$")
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Public-API modules whose docstring examples the README advertises.
DOCTESTED_MODULES = (
    "repro.engine.engine",
    "repro.evaluation.api",
    "repro.evaluation.core",
    "repro.planner.batch",
    "repro.planner.cache",
    "repro.planner.plan",
    "repro.xmlmodel.document",
    "repro.xmlmodel.idset",
    "repro.xmlmodel.index",
)


def _fences(path, language):
    """Yield (start_line, code) for every fenced block of ``language``."""
    in_fence = False
    keep = False
    start = 0
    buffer: list[str] = []
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = _FENCE.match(line.strip())
        if match and not in_fence:
            in_fence = True
            keep = match.group(1) == language
            start = number
            buffer = []
        elif match and in_fence:
            if keep:
                yield start, "\n".join(buffer)
            in_fence = False
        elif in_fence and keep:
            buffer.append(line)


def _python_fence_cases():
    for path in DOC_FILES:
        for start, code in _fences(path, "python"):
            yield pytest.param(
                path, start, code, id=f"{path.name}:L{start}"
            )


@pytest.mark.parametrize("path,start,code", list(_python_fence_cases()))
def test_python_fences_execute(path, start, code):
    namespace = {"__name__": f"docfence_{path.stem}_{start}"}
    try:
        exec(compile(code, f"{path.name}:fence@L{start}", "exec"), namespace)
    except Exception as error:  # pragma: no cover - failure reporting
        pytest.fail(f"{path.name} code fence at line {start} failed: {error!r}")


def test_there_are_python_fences_to_check():
    # Guard against the extractor silently matching nothing.
    assert len(list(_python_fence_cases())) >= 5


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(path):
    broken = []
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.name} has broken relative links: {broken}"


def test_readme_links_into_docs_and_back():
    readme_targets = _LINK.findall((REPO_ROOT / "README.md").read_text("utf-8"))
    for name in ("architecture.md", "complexity.md", "benchmarks.md"):
        assert f"docs/{name}" in readme_targets, f"README must link docs/{name}"
    for name in ("complexity.md", "benchmarks.md"):
        targets = _LINK.findall((REPO_ROOT / "docs" / name).read_text("utf-8"))
        assert any(
            target.endswith("architecture.md") for target in targets
        ), f"docs/{name} must link back into the doc set"


@pytest.mark.parametrize("module_name", DOCTESTED_MODULES)
def test_docstring_examples(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{module_name}: {result.failed} doctest failure(s)"
    assert result.attempted > 0, f"{module_name} advertises no worked examples"
