"""Unit tests for the query→circuit compiler and the layer-parallel evaluator."""

import pytest

from repro.errors import FragmentViolationError
from repro.evaluation import CoreXPathEvaluator
from repro.parallel import (
    FALSE_GATE,
    TRUE_GATE,
    compile_positive_query,
    evaluate_in_layers,
    gate_levels,
    parallel_evaluate,
)
from repro.xmlmodel.generators import auction_document, complete_tree_document
from repro.xmlmodel.parser import parse_xml

DOC = parse_xml(
    """
    <site>
      <a id="1"><b><c/></b><b/></a>
      <a id="2"><d/><b><c/><c/></b></a>
      <a id="3"><e/></a>
    </site>
    """
)

POSITIVE_QUERIES = [
    "/child::site/child::a",
    "/descendant::b[child::c]",
    "//a[child::b and descendant::c]",
    "//a[child::d or child::e]",
    "//c/ancestor::a[following-sibling::a]",
    "//a[child::b] | //a[child::e]",
    "//b[parent::a[child::d]]",
]


class TestCompiler:
    @pytest.mark.parametrize("query", POSITIVE_QUERIES)
    def test_selected_nodes_match_core_evaluator(self, query):
        compiled = compile_positive_query(query, DOC)
        expected = CoreXPathEvaluator(DOC).evaluate_nodes(query)
        selected = sorted(compiled.selected_nodes(), key=lambda node: node.order)
        assert [n.order for n in selected] == [n.order for n in expected]

    def test_circuit_is_monotone_and_semi_unbounded(self):
        compiled = compile_positive_query("//a[child::b and descendant::c]", DOC)
        assert compiled.circuit.is_semi_unbounded(and_fanin_bound=2)

    def test_constant_gates_present(self):
        compiled = compile_positive_query("//a", DOC)
        assert TRUE_GATE in compiled.circuit.gates
        assert FALSE_GATE in compiled.circuit.gates

    def test_negation_rejected(self):
        with pytest.raises(FragmentViolationError):
            compile_positive_query("//a[not(child::b)]", DOC)

    def test_non_path_query_rejected(self):
        with pytest.raises(FragmentViolationError):
            compile_positive_query("count(//a)", DOC)

    def test_position_predicates_rejected(self):
        with pytest.raises(FragmentViolationError):
            compile_positive_query("//a[position() = 1]", DOC)

    def test_empty_result_compiles_to_false(self):
        compiled = compile_positive_query("//zzz[child::b]", DOC)
        assert compiled.selected_nodes() == []


class TestLayerParallelEvaluation:
    @pytest.mark.parametrize("query", POSITIVE_QUERIES)
    def test_layered_evaluation_matches_sequential(self, query):
        report = parallel_evaluate(query, DOC)
        expected = CoreXPathEvaluator(DOC).evaluate_nodes(query)
        assert [n.order for n in report.selected] == [n.order for n in expected]

    def test_gate_levels_respect_wires(self):
        compiled = compile_positive_query("//a[child::b and descendant::c]", DOC)
        levels = gate_levels(compiled.circuit)
        for gate in compiled.circuit.gates.values():
            for input_name in gate.inputs:
                assert levels[input_name] < levels[gate.name]

    def test_report_accounting(self):
        report = parallel_evaluate("//a[child::b and descendant::c]", DOC)
        assert report.size == sum(report.work_per_level)
        assert report.depth == len(report.work_per_level) - 1
        assert report.max_width >= 1
        assert report.speedup_bound >= 1.0

    def test_depth_grows_slowly_with_document_size(self):
        query = "//a[child::b and descendant::c]"
        small = parallel_evaluate(query, complete_tree_document(2, 4))
        large = parallel_evaluate(query, complete_tree_document(2, 7))
        # Work grows with the document, parallel time (depth) stays flat.
        assert large.size > 3 * small.size
        assert large.depth <= small.depth + 2

    def test_auction_document_workload(self):
        document = auction_document(sellers=3, items_per_seller=3)
        report = parallel_evaluate("/descendant::open_auction[child::bidder]", document)
        expected = CoreXPathEvaluator(document).evaluate_nodes(
            "/descendant::open_auction[child::bidder]"
        )
        assert len(report.selected) == len(expected)
