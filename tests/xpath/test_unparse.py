"""Unit tests for the AST-to-text serializer (round-trips with the parser)."""

import pytest

from repro.errors import XPathTypeError
from repro.xpath.ast import Literal, Number, conjunction, not_, path, step
from repro.xpath.parser import parse
from repro.xpath.unparse import unparse

ROUND_TRIP_QUERIES = [
    "child::a",
    "/descendant-or-self::node()/child::a",
    "child::a[child::b and not(child::c)]",
    "child::a[position() + 1 = last()]",
    "child::*[self::a or self::b]",
    "attribute::id",
    "/child::a/descendant::b[child::c][position() = 1]",
    "count(/descendant-or-self::node()/child::item) > 3",
    "1 + 2 * 3 - 4 div 5 mod 6",
    "(1 + 2) * 3",
    "child::a | child::b | descendant::c",
    'concat("a", "b")',
    "string-length(normalize-space(child::title))",
    "-(1 + 2)",
    "$var + 1",
    "child::a[child::b or child::c and child::d]",
    "(//a)[1]",
    "id('x')/child::a",
]


class TestRoundTrip:
    @pytest.mark.parametrize("query", ROUND_TRIP_QUERIES)
    def test_parse_unparse_parse_fixpoint(self, query):
        first = parse(query)
        text = unparse(first)
        second = parse(text)
        assert first == second
        # A second round-trip must be textually stable.
        assert unparse(second) == text


class TestFormatting:
    def test_steps_fully_spelled_out(self):
        assert unparse(parse("//a/@id")) == (
            "/descendant-or-self::node()/child::a/attribute::id"
        )

    def test_parentheses_only_where_needed(self):
        assert unparse(parse("1 + 2 * 3")) == "1 + 2 * 3"
        assert unparse(parse("(1 + 2) * 3")) == "(1 + 2) * 3"
        assert unparse(parse("a and (b or c)")) == "child::a and (child::b or child::c)"

    def test_numbers_without_trailing_zero(self):
        assert unparse(Number(3.0)) == "3"
        assert unparse(Number(2.5)) == "2.5"

    def test_string_literal_quoting(self):
        assert unparse(Literal("plain")) == '"plain"'
        assert unparse(Literal('has "quotes"')) == "'has \"quotes\"'"
        with pytest.raises(XPathTypeError):
            unparse(Literal("both ' and \""))

    def test_constructed_ast_unparses(self):
        expr = path(step("child", "a", conjunction(path(step("child", "b")), not_(path(step("child", "c"))))))
        assert unparse(expr) == "child::a[child::b and not(child::c)]"

    def test_str_dunder_matches_unparse(self):
        expr = parse("child::a[1]")
        assert str(expr) == unparse(expr)
