"""Unit tests for the XPath tokeniser, including the section 3.7 disambiguation rules."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.lexer import (
    KIND_LITERAL,
    KIND_NAME,
    KIND_NUMBER,
    KIND_OPERATOR,
    KIND_SYMBOL,
    KIND_VARIABLE,
    tokenize,
)


def kinds_and_values(expression):
    return [(token.kind, token.value) for token in tokenize(expression)[:-1]]


class TestBasicTokens:
    def test_names_and_symbols(self):
        assert kinds_and_values("child::a") == [
            (KIND_NAME, "child"),
            (KIND_SYMBOL, "::"),
            (KIND_NAME, "a"),
        ]

    def test_numbers(self):
        assert kinds_and_values("3.14") == [(KIND_NUMBER, "3.14")]
        assert kinds_and_values(".5") == [(KIND_NUMBER, ".5")]
        assert kinds_and_values("42") == [(KIND_NUMBER, "42")]

    def test_string_literals_both_quotes(self):
        assert kinds_and_values("'abc'") == [(KIND_LITERAL, "abc")]
        assert kinds_and_values('"a b"') == [(KIND_LITERAL, "a b")]

    def test_variables(self):
        assert kinds_and_values("$foo") == [(KIND_VARIABLE, "foo")]

    def test_double_character_symbols(self):
        values = [value for _, value in kinds_and_values("a//b != c <= d")]
        assert "//" in values and "!=" in values and "<=" in values

    def test_dotdot_and_at(self):
        assert kinds_and_values("../@id") == [
            (KIND_SYMBOL, ".."),
            (KIND_SYMBOL, "/"),
            (KIND_SYMBOL, "@"),
            (KIND_NAME, "id"),
        ]

    def test_whitespace_ignored(self):
        assert kinds_and_values("  a  /  b ") == kinds_and_values("a/b")

    def test_eof_token_present(self):
        assert tokenize("a")[-1].kind == "eof"

    def test_positions_recorded(self):
        tokens = tokenize("a and b")
        assert tokens[0].position == 0
        assert tokens[1].position == 2

    def test_qualified_names(self):
        assert kinds_and_values("ns:tag") == [(KIND_NAME, "ns:tag")]


class TestDisambiguation:
    def test_star_after_axis_is_name_test(self):
        tokens = kinds_and_values("child::*")
        assert tokens[-1] == (KIND_SYMBOL, "*")

    def test_star_after_number_is_operator(self):
        tokens = kinds_and_values("2 * 3")
        assert tokens[1] == (KIND_OPERATOR, "*")

    def test_star_after_name_is_operator(self):
        tokens = kinds_and_values("last() * 2")
        assert (KIND_OPERATOR, "*") in tokens

    def test_star_after_closing_paren_is_operator(self):
        tokens = kinds_and_values("(1) * 2")
        assert (KIND_OPERATOR, "*") in tokens

    def test_star_at_start_is_name_test(self):
        assert kinds_and_values("*")[0] == (KIND_SYMBOL, "*")

    def test_star_after_slash_is_name_test(self):
        assert kinds_and_values("a/*")[-1] == (KIND_SYMBOL, "*")

    def test_and_as_operator_vs_element_name(self):
        operator_case = kinds_and_values("a and b")
        assert (KIND_OPERATOR, "and") in operator_case
        name_case = kinds_and_values("child::and")
        assert (KIND_NAME, "and") in name_case

    def test_div_and_mod_operators(self):
        tokens = kinds_and_values("4 div 2 mod 3")
        assert tokens.count((KIND_OPERATOR, "div")) == 1
        assert tokens.count((KIND_OPERATOR, "mod")) == 1

    def test_name_test_star_then_multiply(self):
        tokens = kinds_and_values("count(child::*) * 2")
        star_tokens = [t for t in tokens if t[1] == "*"]
        assert star_tokens == [(KIND_SYMBOL, "*"), (KIND_OPERATOR, "*")]


class TestLexerErrors:
    def test_unterminated_literal(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("'abc")

    def test_bad_variable(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("$ ")

    def test_unexpected_character(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("a # b")
