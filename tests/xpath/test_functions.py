"""Unit tests for the core-library signatures and static typing."""

import pytest

from repro.errors import XPathTypeError
from repro.xpath.functions import (
    BOOLEAN,
    CORE_FUNCTIONS,
    NODESET,
    NUMBER,
    OBJECT,
    PXPATH_FORBIDDEN_FUNCTIONS,
    STRING,
    signature,
    static_type,
    validate_call,
)
from repro.xpath.parser import parse


class TestSignatures:
    def test_core_library_is_complete(self):
        # The XPath 1.0 core function library has 27 functions.
        assert len(CORE_FUNCTIONS) == 27

    def test_signature_lookup(self):
        assert signature("count").result_type == NUMBER
        assert signature("name").min_args == 0
        assert signature("concat").max_args is None

    def test_unknown_function_raises(self):
        with pytest.raises(XPathTypeError):
            signature("frobnicate")

    def test_validate_call_checks_arity(self):
        validate_call(parse("count(//a)"))
        with pytest.raises(XPathTypeError):
            validate_call(parse("count(//a, //b)"))
        with pytest.raises(XPathTypeError):
            validate_call(parse("not()"))
        with pytest.raises(XPathTypeError):
            validate_call(parse("concat('only-one')"))

    def test_pxpath_forbidden_functions_listed_in_paper(self):
        # Definition 6.1(2) names these functions explicitly.
        assert {
            "not",
            "count",
            "sum",
            "string",
            "number",
            "local-name",
            "namespace-uri",
            "name",
            "string-length",
            "normalize-space",
        } == set(PXPATH_FORBIDDEN_FUNCTIONS)


class TestStaticTyping:
    @pytest.mark.parametrize(
        "query,expected",
        [
            ("child::a", NODESET),
            ("//a | //b", NODESET),
            ("id('x')/a", NODESET),
            ("(//a)[1]", NODESET),
            ("1 + 2", NUMBER),
            ("-position()", NUMBER),
            ("count(//a)", NUMBER),
            ("'hello'", STRING),
            ("concat('a', 'b')", STRING),
            ("name(//a)", STRING),
            ("a and b", BOOLEAN),
            ("1 < 2", BOOLEAN),
            ("not(a)", BOOLEAN),
            ("true()", BOOLEAN),
            ("$x", OBJECT),
        ],
    )
    def test_static_type(self, query, expected):
        assert static_type(parse(query)) == expected

    def test_unknown_function_type_raises(self):
        with pytest.raises(XPathTypeError):
            static_type(parse("mystery(1)"))
