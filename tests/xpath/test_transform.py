"""Unit tests for the de Morgan and predicate-merging transformations."""

from repro.evaluation import ContextValueTableEvaluator
from repro.xmlmodel.parser import parse_xml
from repro.xpath.analysis import max_predicates_per_step, negation_depth
from repro.xpath.parser import parse
from repro.xpath.transform import merge_iterated_predicates, push_negations
from repro.xpath.unparse import unparse

DOC = parse_xml("<a><b><c/></b><b/><d><c/></d><b><c/><e/></b></a>")


def boolean_value(expr, document=DOC):
    return bool(
        ContextValueTableEvaluator(document).evaluate(f"boolean({unparse(expr)})")
        if not isinstance(expr, str)
        else ContextValueTableEvaluator(document).evaluate(f"boolean({expr})")
    )


class TestPushNegations:
    def test_double_negation_cancels(self):
        assert unparse(push_negations(parse("not(not(child::a))"))) == "child::a"

    def test_de_morgan_and(self):
        result = push_negations(parse("not(child::a and child::b)"))
        assert unparse(result) == "not(child::a) or not(child::b)"

    def test_de_morgan_or(self):
        result = push_negations(parse("not(child::a or child::b)"))
        assert unparse(result) == "not(child::a) and not(child::b)"

    def test_comparison_flip_for_scalars(self):
        assert unparse(push_negations(parse("not(position() < last())"))) == (
            "position() >= last()"
        )
        assert unparse(push_negations(parse("not(1 = 2)"))) == "1 != 2"

    def test_comparison_with_node_set_is_not_flipped(self):
        # not(π = 3) is NOT equivalent to π != 3 under existential semantics.
        result = push_negations(parse("not(child::a = 3)"))
        assert unparse(result) == "not(child::a = 3)"

    def test_negation_remains_only_on_location_paths(self):
        query = "not((child::a or not(child::b)) and not(position() = 1))"
        transformed = push_negations(parse(query))
        # After the rewrite every not() wraps a location path directly.
        from repro.xpath.ast import FunctionCall, LocationPath

        for node in transformed.walk():
            if isinstance(node, FunctionCall) and node.name == "not":
                assert isinstance(node.args[0], LocationPath)

    def test_nested_predicates_are_rewritten_too(self):
        query = "child::a[not(not(child::b))]"
        assert unparse(push_negations(parse(query))) == "child::a[child::b]"

    def test_semantics_preserved_on_examples(self):
        queries = [
            "not(child::a and not(child::d))",
            "not(not(child::a) or child::zzz)",
            "not(position() < 1)",
            "not(child::a[not(child::b)] and child::d)",
        ]
        for query in queries:
            original = ContextValueTableEvaluator(DOC).evaluate(f"boolean({query})")
            rewritten = ContextValueTableEvaluator(DOC).evaluate(
                f"boolean({unparse(push_negations(parse(query)))})"
            )
            assert original == rewritten, query


class TestMergeIteratedPredicates:
    def test_merges_position_free_predicates(self):
        merged = merge_iterated_predicates(parse("child::a[child::b][child::c]"))
        assert max_predicates_per_step(merged) == 1
        assert unparse(merged) == "child::a[child::b and child::c]"

    def test_keeps_positional_predicates_apart(self):
        query = "child::a[child::b][position() = 1]"
        merged = merge_iterated_predicates(parse(query))
        assert max_predicates_per_step(merged) == 2

    def test_recurses_into_nested_structures(self):
        merged = merge_iterated_predicates(parse("//a[b][c]/d[e][f][g]"))
        assert max_predicates_per_step(merged) == 1

    def test_semantics_preserved_for_position_free_case(self):
        document = parse_xml("<a><b><c/><d/></b><b><c/></b><b><d/></b></a>")
        query = "/child::a/child::b[child::c][child::d]"
        merged = merge_iterated_predicates(parse(query))
        original_nodes = ContextValueTableEvaluator(document).evaluate_nodes(query)
        merged_nodes = ContextValueTableEvaluator(document).evaluate_nodes(merged)
        assert [n.order for n in original_nodes] == [n.order for n in merged_nodes]

    def test_no_change_when_single_predicate(self):
        query = parse("child::a[child::b]")
        assert merge_iterated_predicates(query) == query
