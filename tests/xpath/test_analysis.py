"""Unit tests for the static query analyses."""

from repro.xpath.analysis import (
    arithmetic_nesting_depth,
    axes_used,
    concat_arity_and_nesting,
    functions_used,
    is_position_sensitive,
    literal_numbers,
    max_predicates_per_step,
    negation_depth,
    query_depth,
    step_count,
    uses_function,
)
from repro.xpath.parser import parse


class TestPositionSensitivity:
    def test_direct_position_use(self):
        assert is_position_sensitive(parse("position() = 1"))
        assert is_position_sensitive(parse("last()"))
        assert is_position_sensitive(parse("position() + last() * 2"))

    def test_position_inside_predicate_is_not_outer_sensitive(self):
        assert not is_position_sensitive(parse("child::a[position() = 1]"))
        assert not is_position_sensitive(parse("//a[last()]/child::b"))

    def test_location_paths_never_sensitive(self):
        assert not is_position_sensitive(parse("child::a/descendant::b"))

    def test_function_arguments_propagate(self):
        assert is_position_sensitive(parse("boolean(position() = last())"))
        assert not is_position_sensitive(parse("count(child::a[position() = 1])"))


class TestNegationDepth:
    def test_no_negation(self):
        assert negation_depth(parse("child::a[child::b]")) == 0

    def test_single_negation(self):
        assert negation_depth(parse("child::a[not(child::b)]")) == 1

    def test_nested_negation(self):
        assert negation_depth(parse("not(child::a[not(child::b[not(child::c)])])")) == 3

    def test_parallel_negations_do_not_add(self):
        assert negation_depth(parse("not(a) and not(b)")) == 1


class TestArithmeticNesting:
    def test_flat_arithmetic(self):
        # Left-deep chains still count nesting per level of the AST.
        assert arithmetic_nesting_depth(parse("1 + 2")) == 1
        assert arithmetic_nesting_depth(parse("position() = 1")) == 0

    def test_nested_arithmetic(self):
        assert arithmetic_nesting_depth(parse("(1 + 2) * (3 - 4)")) == 2
        assert arithmetic_nesting_depth(parse("1 + 2 * 3 - 4")) == 3

    def test_unary_minus_counts(self):
        assert arithmetic_nesting_depth(parse("-(1 + 2)")) == 2


class TestStructuralCounts:
    def test_max_predicates_per_step(self):
        assert max_predicates_per_step(parse("child::a")) == 0
        assert max_predicates_per_step(parse("child::a[b]")) == 1
        assert max_predicates_per_step(parse("child::a[b][c][d]/child::e[f]")) == 3
        assert max_predicates_per_step(parse("(//a)[1][2]")) == 2

    def test_axes_used(self):
        assert axes_used(parse("//a/parent::b[ancestor::c]")) == {
            "descendant-or-self",
            "child",
            "parent",
            "ancestor",
        }

    def test_functions_used_and_uses_function(self):
        expr = parse("count(//a[not(b)]) > position()")
        assert functions_used(expr) == {"count", "not", "position"}
        assert uses_function(expr, {"not"})
        assert not uses_function(expr, {"string"})

    def test_step_count(self):
        assert step_count(parse("//a/b[c/d]")) == 5

    def test_query_depth_grows_with_nesting(self):
        shallow = query_depth(parse("child::a"))
        deep = query_depth(parse("child::a[child::b[child::c[child::d]]]"))
        assert deep > shallow

    def test_literal_numbers(self):
        assert sorted(literal_numbers(parse("a[2] | b[position() = 3.5]"))) == [2.0, 3.5]

    def test_concat_arity_and_nesting(self):
        arity, nesting = concat_arity_and_nesting(
            parse("concat('a', concat('b', 'c', 'd', 'e'))")
        )
        assert arity == 4
        assert nesting == 2
        assert concat_arity_and_nesting(parse("child::a")) == (0, 0)
