"""Unit tests for the AST convenience constructors used by the reductions."""

import pytest

from repro.xpath.ast import (
    BinaryOp,
    FunctionCall,
    LocationPath,
    NodeTest,
    Step,
    conjunction,
    disjunction,
    not_,
    path,
    step,
)
from repro.xpath.parser import parse


class TestStepAndPath:
    def test_step_with_name_test(self):
        built = step("child", "a")
        assert built == Step("child", NodeTest("name", "a"), ())

    def test_step_with_node_type_test(self):
        built = step("descendant-or-self", "node()")
        assert built.node_test == NodeTest("type", "node()")

    def test_step_with_predicates(self):
        built = step("child", "a", parse("child::b"), parse("child::c"))
        assert len(built.predicates) == 2
        assert built.with_predicates(()).predicates == ()

    def test_path_relative_and_absolute(self):
        relative = path(step("child", "a"), step("child", "b"))
        absolute = path(step("child", "a"), absolute=True)
        assert not relative.absolute and absolute.absolute
        assert relative == parse("child::a/child::b")
        assert relative.is_condition_free()
        assert not path(step("child", "a", parse("child::b"))).is_condition_free()


class TestBooleanBuilders:
    def test_conjunction_matches_parser(self):
        built = conjunction(parse("child::a"), parse("child::b"), parse("child::c"))
        assert built == parse("child::a and child::b and child::c")

    def test_disjunction_matches_parser(self):
        built = disjunction(parse("child::a"), parse("child::b"))
        assert built == parse("child::a or child::b")

    def test_single_operand_passthrough(self):
        only = parse("child::a")
        assert conjunction(only) is only
        assert disjunction(only) is only

    def test_empty_operands_rejected(self):
        with pytest.raises(ValueError):
            conjunction()
        with pytest.raises(ValueError):
            disjunction()

    def test_not_builder(self):
        built = not_(parse("child::a"))
        assert built == FunctionCall("not", (parse("child::a"),))
        assert built == parse("not(child::a)")


class TestOperatorPredicates:
    def test_binaryop_kind_helpers(self):
        assert BinaryOp("and", parse("a"), parse("b")).is_boolean()
        assert BinaryOp("<", parse("1"), parse("2")).is_comparison()
        assert BinaryOp("div", parse("1"), parse("2")).is_arithmetic()
        assert BinaryOp("|", parse("a"), parse("b")).is_union()
        assert not BinaryOp("and", parse("a"), parse("b")).is_comparison()

    def test_node_test_helpers(self):
        assert NodeTest("name", "*").is_wildcard()
        assert not NodeTest("name", "a").is_wildcard()
        assert NodeTest("type", "text()").text() == "text()"
