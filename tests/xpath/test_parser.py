"""Unit tests for the XPath 1.0 parser and AST construction."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    BinaryOp,
    FilterExpr,
    FunctionCall,
    Literal,
    LocationPath,
    Negate,
    Number,
    PathExpr,
    Step,
    VariableReference,
)
from repro.xpath.parser import parse, parse_location_path


class TestLocationPaths:
    def test_simple_relative_path(self):
        expr = parse("child::a/child::b")
        assert isinstance(expr, LocationPath)
        assert not expr.absolute
        assert [step.axis for step in expr.steps] == ["child", "child"]
        assert [step.node_test.value for step in expr.steps] == ["a", "b"]

    def test_absolute_path(self):
        expr = parse("/child::a")
        assert expr.absolute

    def test_root_only(self):
        expr = parse("/")
        assert isinstance(expr, LocationPath)
        assert expr.absolute and expr.steps == ()

    def test_default_axis_is_child(self):
        expr = parse("a/b")
        assert [step.axis for step in expr.steps] == ["child", "child"]

    def test_double_slash_expansion(self):
        expr = parse("//a")
        assert [step.axis for step in expr.steps] == ["descendant-or-self", "child"]
        assert expr.steps[0].node_test.value == "node()"

    def test_double_slash_in_the_middle(self):
        expr = parse("a//b")
        assert [step.axis for step in expr.steps] == [
            "child",
            "descendant-or-self",
            "child",
        ]

    def test_dot_and_dotdot(self):
        expr = parse("./..")
        assert [(s.axis, s.node_test.value) for s in expr.steps] == [
            ("self", "node()"),
            ("parent", "node()"),
        ]

    def test_attribute_abbreviation(self):
        expr = parse("@id")
        assert expr.steps[0].axis == "attribute"
        assert expr.steps[0].node_test.value == "id"

    def test_all_axes_parse(self):
        for axis in (
            "self",
            "child",
            "parent",
            "descendant",
            "descendant-or-self",
            "ancestor",
            "ancestor-or-self",
            "following",
            "following-sibling",
            "preceding",
            "preceding-sibling",
            "attribute",
        ):
            expr = parse(f"{axis}::a")
            assert expr.steps[0].axis == axis

    def test_wildcard_and_node_type_tests(self):
        assert parse("child::*").steps[0].node_test.value == "*"
        assert parse("child::node()").steps[0].node_test.value == "node()"
        assert parse("child::text()").steps[0].node_test.value == "text()"
        assert parse("child::comment()").steps[0].node_test.value == "comment()"
        pi = parse("child::processing-instruction('x')").steps[0].node_test.value
        assert pi == "processing-instruction('x')"

    def test_predicates_attach_to_steps(self):
        expr = parse("child::a[child::b][position() = 1]")
        step = expr.steps[0]
        assert len(step.predicates) == 2
        assert isinstance(step.predicates[1], BinaryOp)

    def test_element_named_like_axis_without_axis_marker(self):
        expr = parse("child/self")
        assert [s.node_test.value for s in expr.steps] == ["child", "self"]
        assert [s.axis for s in expr.steps] == ["child", "child"]


class TestExpressions:
    def test_operator_precedence(self):
        expr = parse("1 + 2 * 3 = 7 and true()")
        assert isinstance(expr, BinaryOp) and expr.op == "and"
        comparison = expr.left
        assert comparison.op == "="
        assert comparison.left.op == "+"
        assert comparison.left.right.op == "*"

    def test_or_lower_than_and(self):
        expr = parse("a or b and c")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_left_associativity_of_minus(self):
        expr = parse("5 - 2 - 1")
        assert expr.op == "-"
        assert isinstance(expr.left, BinaryOp) and expr.left.op == "-"
        assert isinstance(expr.right, Number)

    def test_relational_chain(self):
        expr = parse("1 < 2 <= 3")
        assert expr.op == "<="
        assert expr.left.op == "<"

    def test_unary_minus(self):
        expr = parse("-3 + 1")
        assert expr.op == "+"
        assert isinstance(expr.left, Negate)

    def test_union(self):
        expr = parse("a | b | c")
        assert expr.op == "|"
        assert expr.left.op == "|"

    def test_parentheses_override_precedence(self):
        expr = parse("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_function_calls(self):
        expr = parse("concat('a', 'b', 'c')")
        assert isinstance(expr, FunctionCall)
        assert expr.name == "concat"
        assert len(expr.args) == 3
        assert isinstance(expr.args[0], Literal)

    def test_nested_function_calls(self):
        expr = parse("not(count(//a) > 2)")
        assert expr.name == "not"
        assert expr.args[0].op == ">"
        assert expr.args[0].left.name == "count"

    def test_variable_reference(self):
        expr = parse("$x + 1")
        assert isinstance(expr.left, VariableReference)
        assert expr.left.name == "x"

    def test_filter_expression_with_predicate(self):
        expr = parse("(//a)[1]")
        assert isinstance(expr, FilterExpr)
        assert isinstance(expr.primary, LocationPath)
        assert isinstance(expr.predicates[0], Number)

    def test_path_expression_after_function(self):
        expr = parse("id('x')/child::a")
        assert isinstance(expr, PathExpr)
        assert isinstance(expr.start, FunctionCall)
        assert expr.tail.steps[0].node_test.value == "a"

    def test_path_expression_with_double_slash(self):
        expr = parse("id('x')//a")
        assert isinstance(expr, PathExpr)
        assert expr.tail.steps[0].axis == "descendant-or-self"

    def test_node_type_name_as_function_is_not_a_call(self):
        expr = parse("text()")
        assert isinstance(expr, LocationPath)
        assert expr.steps[0].node_test.value == "text()"


class TestAstUtilities:
    def test_size_counts_nodes(self):
        assert parse("child::a").size() == 2  # LocationPath + Step
        assert parse("child::a[child::b]").size() == 4

    def test_walk_preorder(self):
        expr = parse("a and b")
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds[0] == "BinaryOp"
        assert kinds.count("LocationPath") == 2

    def test_structural_equality(self):
        assert parse("child::a[b]") == parse("child::a[b]")
        assert parse("child::a") != parse("child::b")

    def test_parse_location_path_helper(self):
        assert isinstance(parse_location_path("//a/b"), LocationPath)
        with pytest.raises(XPathSyntaxError):
            parse_location_path("1 + 2")


class TestParserErrors:
    @pytest.mark.parametrize(
        "expression",
        [
            "",
            "child::",
            "a[",
            "a]",
            "a[]",
            "(a",
            "a b",
            "a and",
            "foo(1,)",
            "child::a/",
            "//",
            "$",
            "a['unterminated]",
        ],
    )
    def test_malformed_expressions_raise(self, expression):
        with pytest.raises(XPathSyntaxError):
            parse(expression)

    def test_error_carries_position(self):
        with pytest.raises(XPathSyntaxError) as excinfo:
            parse("child::a[[]")
        assert excinfo.value.position is not None
