"""Unit tests for the CorpusStore directory layout and manifest."""

import json
import os
import threading

import pytest

from repro.store import CorpusStore, StoreError, StoreKeyError, snapshot_hash
from repro.store.corpus import SNAPSHOT_SUFFIX
from repro.xmlmodel import parse_xml, serialize

XML = "<a><b/><b><c/></b></a>"


@pytest.fixture
def store(tmp_path):
    return CorpusStore(tmp_path / "corpus")


class TestPutGet:
    def test_put_then_get_round_trips(self, store):
        entry = store.put(XML, key="doc")
        assert entry.key == "doc"
        assert entry.nodes == 5
        assert entry.root_tag == "a"
        assert serialize(store.get("doc")) == serialize(parse_xml(XML))

    def test_default_key_is_content_hash(self, store):
        entry = store.put(XML)
        assert entry.key == entry.hash == snapshot_hash(store.read_bytes(entry.key))

    def test_identical_content_shares_one_snapshot_file(self, store, tmp_path):
        first = store.put(XML, key="one")
        second = store.put(parse_xml(XML), key="two")
        assert first.hash == second.hash
        snapshots = os.listdir(tmp_path / "corpus" / "snapshots")
        assert snapshots == [first.hash + SNAPSHOT_SUFFIX]

    def test_raw_hash_is_always_addressable(self, store):
        entry = store.put(XML, key="named")
        assert entry.hash in store
        assert store.get(entry.hash).size == 5

    def test_get_unknown_key_raises_store_key_error(self, store):
        with pytest.raises(StoreKeyError, match="nope"):
            store.get("nope")
        with pytest.raises(KeyError):  # also catchable as plain KeyError
            store.stat("nope")

    def test_traversal_shaped_keys_never_reach_the_filesystem(self, store, tmp_path):
        # A .snap file outside the store must not be addressable through it.
        outside = tmp_path / "evil.snap"
        outside.write_bytes(b"not yours")
        for key in ("../evil", "../../evil", "/etc/passwd", "a/../b"):
            with pytest.raises(StoreKeyError):
                store.stat(key)
            assert key not in store

    def test_put_accepts_documents_and_text_only(self, store):
        with pytest.raises(TypeError):
            store.put(42)

    def test_get_stamps_snapshot_hash(self, store):
        entry = store.put(XML, key="doc")
        assert store.get("doc").snapshot_hash == entry.hash

    def test_mmap_get_matches_eager_get(self, store):
        store.put(XML, key="doc")
        assert serialize(store.get("doc", mmap=True)) == serialize(store.get("doc"))


class TestManifest:
    def test_list_and_keys_are_sorted(self, store):
        store.put("<b/>", key="beta")
        store.put("<a/>", key="alpha")
        assert store.keys() == ["alpha", "beta"]
        assert [entry.key for entry in store.list()] == ["alpha", "beta"]
        assert len(store) == 2

    def test_reopening_sees_the_same_entries(self, store):
        store.put(XML, key="doc")
        reopened = CorpusStore(store.root)
        assert reopened.keys() == ["doc"]
        assert reopened.stat("doc").nodes == 5

    def test_manifest_cache_sees_external_writers(self, store):
        store.put(XML, key="doc")
        assert store.keys() == ["doc"]  # prime the mtime cache
        # A second handle on the same directory (another process, in
        # spirit) adds an entry; the first must observe it.
        CorpusStore(store.root).put("<x/>", key="other")
        assert store.keys() == ["doc", "other"]
        assert store.stat("other").root_tag == "x"

    def test_repeated_stats_do_not_reparse_the_manifest(self, store, monkeypatch):
        import json as json_module

        store.put(XML, key="doc")
        store.stat("doc")  # prime
        calls = []
        original = json_module.load
        monkeypatch.setattr(
            json_module, "load", lambda *a, **k: calls.append(1) or original(*a, **k)
        )
        for _ in range(10):
            store.stat("doc")
        assert calls == []  # served from the mtime-keyed cache

    def test_delete_removes_key_but_keeps_bytes(self, store):
        entry = store.put(XML, key="doc")
        store.delete("doc")
        assert "doc" not in store.keys()
        assert store.get(entry.hash).size == 5
        with pytest.raises(StoreKeyError):
            store.delete("doc")

    def test_reputting_a_key_points_it_at_new_content(self, store):
        store.put(XML, key="doc")
        store.put("<x/>", key="doc")
        assert store.stat("doc").root_tag == "x"
        assert len(store) == 1

    def test_corrupt_manifest_is_reported(self, store):
        with open(os.path.join(store.root, "manifest.json"), "w") as handle:
            handle.write("{ not json")
        with pytest.raises(StoreError, match="manifest"):
            store.keys()

    def test_unsupported_manifest_version_is_reported(self, store):
        with open(os.path.join(store.root, "manifest.json"), "w") as handle:
            json.dump({"version": 999, "entries": {}}, handle)
        with pytest.raises(StoreError, match="version"):
            store.keys()

    def test_missing_snapshot_file_is_reported(self, store):
        entry = store.put(XML, key="doc")
        os.unlink(
            os.path.join(store.root, "snapshots", entry.hash + SNAPSHOT_SUFFIX)
        )
        with pytest.raises(StoreError, match="missing"):
            store.get("doc")

    def test_corrupt_snapshot_bytes_raise_store_error(self, store):
        entry = store.put(XML, key="doc")
        path = os.path.join(store.root, "snapshots", entry.hash + SNAPSHOT_SUFFIX)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF  # flip a bit inside the string table
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(StoreError, match="content-hash"):
            store.get("doc")
        # The mmap path skips the digest but still fails typed, not raw.
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            store.get("doc", mmap=True)

    def test_no_temp_files_left_behind(self, store, tmp_path):
        for i in range(5):
            store.put(f"<a n='{i}'/>", key=f"doc{i}")
        leftovers = [
            name
            for base, _, names in os.walk(tmp_path / "corpus")
            for name in names
            if name.endswith(".tmp")
        ]
        assert leftovers == []


class TestConcurrency:
    def test_concurrent_puts_and_gets_are_consistent(self, store):
        errors = []

        def writer(i):
            try:
                for j in range(5):
                    store.put(f"<a n='{i}-{j}'/>", key=f"doc-{i}-{j}")
            except Exception as error:  # pragma: no cover - failure capture
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(store) == 20
        for key in store.keys():
            assert store.get(key).size >= 2
