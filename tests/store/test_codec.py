"""Unit tests for the snapshot codec (dump/load, framing, residencies)."""

import sys

import pytest

from repro.store import (
    SnapshotError,
    dump_snapshot,
    load_snapshot,
    load_snapshot_with_hash,
    snapshot_hash,
)
from repro.store.codec import MAGIC, VERSION, _HEADER
from repro.xmlmodel import (
    Document,
    DocumentIndex,
    build_tree,
    chain_document,
    parse_xml,
    serialize,
)
from repro.xmlmodel.nodes import (
    AttributeNode,
    CommentNode,
    ElementNode,
    ProcessingInstructionNode,
    RootNode,
    TextNode,
)

MIXED_XML = (
    '<?pi some data?><!--before--><library city="Vienna" id="l1">'
    "<book year='2003'><title>XPath &amp; Complexity</title></book>"
    "<book/><!--inner-->text<empty/></library><!--after-->"
)


def _assert_same_tree(left, right):
    assert type(left) is type(right)
    assert left.order == right.order
    assert left.node_type is right.node_type
    if isinstance(left, ElementNode):
        assert left.tag == right.tag
        assert [(a.attr_name, a.value) for a in left.attributes] == [
            (a.attr_name, a.value) for a in right.attributes
        ]
        for l_attr, r_attr in zip(left.attributes, right.attributes):
            assert l_attr.order == r_attr.order
            assert r_attr.parent is right
    if isinstance(left, (TextNode, CommentNode)):
        assert left.text == right.text
    if isinstance(left, ProcessingInstructionNode):
        assert (left.target, left.data) == (right.target, right.data)
    assert len(left.children) == len(right.children)
    for l_child, r_child in zip(left.children, right.children):
        assert r_child.parent is right
        _assert_same_tree(l_child, r_child)


class TestRoundTrip:
    def test_mixed_document_round_trips_structurally(self):
        document = parse_xml(MIXED_XML)
        loaded = load_snapshot(dump_snapshot(document))
        _assert_same_tree(document.root, loaded.root)
        assert serialize(loaded) == serialize(document)
        assert loaded.size == document.size

    def test_loaded_document_is_fully_wired(self):
        loaded = load_snapshot(dump_snapshot(parse_xml(MIXED_XML)))
        assert isinstance(loaded, Document)
        assert isinstance(loaded.root, RootNode)
        assert loaded.has_index  # no rebuild needed, ever
        assert isinstance(loaded.index, DocumentIndex)
        for node in loaded.nodes:
            assert node.document is loaded
            assert loaded.index.node_of(loaded.index.id_of(node)) is node
        for attribute in loaded.attributes:
            assert isinstance(attribute, AttributeNode)
            assert attribute.document is loaded
        assert [e.tag for e in loaded.elements_with_tag("book")] == ["book", "book"]

    def test_index_arrays_match_a_fresh_build(self):
        document = parse_xml(MIXED_XML)
        fresh = document.index
        loaded = load_snapshot(dump_snapshot(document)).index
        for name in (
            "parent",
            "subtree_end",
            "post",
            "first_child",
            "next_sibling",
            "prev_sibling",
        ):
            assert list(getattr(loaded, name)) == list(getattr(fresh, name)), name
        assert list(loaded.element_ids) == list(fresh.element_ids)
        assert set(loaded.ids_by_tag) == set(fresh.ids_by_tag)
        for tag, partition in fresh.ids_by_tag.items():
            assert list(loaded.ids_by_tag[tag]) == list(partition), tag
        assert set(loaded._ids_by_kind) == set(fresh._ids_by_kind)
        for kind, partition in fresh._ids_by_kind.items():
            assert list(loaded._ids_by_kind[kind]) == list(partition), kind

    def test_unicode_and_interning(self):
        document = build_tree(
            ("μ", {"attr": "väl"}, [("μ", ["ünïcode πλ"]), ("μ", ["ünïcode πλ"])])
        )
        loaded = load_snapshot(dump_snapshot(document))
        assert serialize(loaded) == serialize(document)

    def test_deep_chain_round_trips_without_recursion(self):
        # Reconstruction must be iterative: 5k nesting levels would blow
        # the interpreter stack under a recursive loader.
        document = chain_document(5_000)
        loaded = load_snapshot(dump_snapshot(document))
        assert loaded.size == document.size
        assert loaded.index.subtree_end[0] == document.index.subtree_end[0]


class TestDeterminismAndHash:
    def test_same_document_same_bytes(self):
        assert dump_snapshot(parse_xml(MIXED_XML)) == dump_snapshot(
            parse_xml(MIXED_XML)
        )

    def test_round_trip_is_byte_stable(self):
        blob = dump_snapshot(parse_xml(MIXED_XML))
        assert dump_snapshot(load_snapshot(blob)) == blob

    def test_hash_is_content_hash(self):
        blob = dump_snapshot(parse_xml(MIXED_XML))
        document, digest = load_snapshot_with_hash(blob)
        assert digest == snapshot_hash(blob)
        assert snapshot_hash(dump_snapshot(document)) == digest
        assert snapshot_hash(dump_snapshot(parse_xml("<other/>"))) != digest


class TestLazyResidency:
    def test_lazy_load_is_zero_copy_and_identical(self):
        document = parse_xml(MIXED_XML)
        blob = dump_snapshot(document)
        lazy = load_snapshot(memoryview(blob), lazy=True)
        assert serialize(lazy) == serialize(document)
        # index arrays are views over the snapshot buffer, not copies
        assert isinstance(lazy.index.parent, memoryview)
        assert list(lazy.index.parent) == list(document.index.parent)

    def test_lazy_axes_and_partitions_work(self):
        document = parse_xml(MIXED_XML)
        lazy = load_snapshot(memoryview(dump_snapshot(document)), lazy=True)
        fresh = document.index
        for axis in ("child", "descendant", "ancestor", "following", "preceding"):
            for node_id in range(fresh.size):
                assert lazy.index.axis_ids(node_id, axis) == fresh.axis_ids(
                    node_id, axis
                ), (axis, node_id)
        assert lazy.index.tag_ids_in_interval("book", 0, fresh.size) == list(
            fresh.tag_ids_in_interval("book", 0, fresh.size)
        )


class TestFraming:
    def test_rejects_garbage(self):
        with pytest.raises(SnapshotError, match="magic"):
            load_snapshot(b"not a snapshot at all........")

    def test_rejects_truncation(self):
        with pytest.raises(SnapshotError):
            load_snapshot(dump_snapshot(parse_xml("<a/>"))[:40])

    def test_rejects_future_versions(self):
        blob = bytearray(dump_snapshot(parse_xml("<a/>")))
        blob[len(MAGIC)] = VERSION + 1  # little-endian low byte of version
        with pytest.raises(SnapshotError, match="version"):
            load_snapshot(bytes(blob))

    def test_header_shape(self):
        blob = dump_snapshot(parse_xml("<a/>"))
        magic, version, sections = _HEADER.unpack_from(blob, 0)
        assert magic == MAGIC
        assert version == VERSION
        assert sections == 16
