"""Hypothesis properties of the snapshot codec.

``load(dump(doc))`` must be a perfect clone along every observable
dimension: node identity structure (kinds, names, attribute lists,
parent/child wiring, document order), all navigational axes, and query
results through the id-native evaluator.  Dumping must be deterministic
— the same document always yields the same bytes, and a round-tripped
document re-dumps to the identical snapshot.
"""

from hypothesis import given, settings

from repro.evaluation.core import CoreXPathEvaluator
from repro.store import dump_snapshot, load_snapshot, snapshot_hash
from repro.xmlmodel import serialize
from repro.xmlmodel.nodes import ElementNode

from tests.properties.strategies import ALL_AXES, core_xpath_queries, documents


def _shape(document):
    """The identity structure of a document as comparable plain data."""
    return [
        (
            node.node_type.value,
            node.name(),
            node.order,
            node.parent.order if node.parent is not None else None,
            [child.order for child in node.children],
            [(a.attr_name, a.value, a.order) for a in node.attributes]
            if isinstance(node, ElementNode)
            else [],
        )
        for node in document.nodes
    ]


class TestRoundTripProperties:
    @given(documents(max_nodes=40))
    @settings(max_examples=60, deadline=None)
    def test_node_identity_structure_is_preserved(self, document):
        loaded = load_snapshot(dump_snapshot(document))
        assert _shape(loaded) == _shape(document)
        assert serialize(loaded) == serialize(document)

    @given(documents(max_nodes=30))
    @settings(max_examples=40, deadline=None)
    def test_all_axes_agree_from_every_node(self, document):
        fresh = document.index
        for lazy in (False, True):
            blob = dump_snapshot(document)
            loaded = load_snapshot(memoryview(blob), lazy=lazy).index
            for axis in ALL_AXES:
                for node_id in range(fresh.size):
                    assert loaded.axis_ids(node_id, axis) == fresh.axis_ids(
                        node_id, axis
                    ), (axis, node_id, lazy)

    @given(documents(max_nodes=30), core_xpath_queries(allow_negation=True))
    @settings(max_examples=60, deadline=None)
    def test_evaluate_ids_agrees(self, document, query):
        loaded = load_snapshot(dump_snapshot(document))
        expected = CoreXPathEvaluator(document).evaluate_ids(query)
        assert CoreXPathEvaluator(loaded).evaluate_ids(query) == expected

    @given(documents(max_nodes=30), core_xpath_queries(allow_negation=True))
    @settings(max_examples=30, deadline=None)
    def test_lazy_evaluate_ids_agrees(self, document, query):
        blob = dump_snapshot(document)
        loaded = load_snapshot(memoryview(blob), lazy=True)
        expected = CoreXPathEvaluator(document).evaluate_ids(query)
        assert CoreXPathEvaluator(loaded).evaluate_ids(query) == expected


class TestDeterminismProperties:
    @given(documents(max_nodes=40))
    @settings(max_examples=60, deadline=None)
    def test_dump_is_deterministic_and_round_trip_stable(self, document):
        first = dump_snapshot(document)
        assert dump_snapshot(document) == first
        assert dump_snapshot(load_snapshot(first)) == first
        assert snapshot_hash(first) == snapshot_hash(dump_snapshot(document))
