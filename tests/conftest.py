"""Shared fixtures for the test-suite.

The fixtures provide a small set of documents that the tests reuse:

* ``book_document`` — a hand-written mixed-content document with attributes;
* ``paper_example_document`` — the shape used in the paper's examples
  (nodes labelled a/b/c/d with sibling structure);
* ``auction`` — the XMark-flavoured synthetic workload;
* ``carry`` — the Figure 2 circuit.
"""

import pytest

from repro.circuits import carry_circuit
from repro.xmlmodel import auction_document, parse_xml

BOOK_XML = """
<library city="Vienna">
  <shelf topic="databases">
    <book year="2003" id="b1"><title>XPath Complexity</title><author>Gottlob</author></book>
    <book year="2002" id="b2"><title>Efficient XPath</title><author>Koch</author></book>
  </shelf>
  <shelf topic="logic">
    <book year="1994" id="b3"><title>Computational Complexity</title></book>
  </shelf>
  <!-- catalogue ends here -->
</library>
"""

PAPER_XML = "<a><b><c/></b><b/><d><b><c/>text</b><e/></d><b><f/></b></a>"


@pytest.fixture
def book_document():
    return parse_xml(BOOK_XML)


@pytest.fixture
def paper_example_document():
    return parse_xml(PAPER_XML)


@pytest.fixture
def auction():
    return auction_document(sellers=4, items_per_seller=3, seed=11)


@pytest.fixture
def carry():
    return carry_circuit()
