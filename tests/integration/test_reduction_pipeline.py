"""End-to-end integration tests of the reduction → serialisation → evaluation pipeline."""

import itertools

import xml.etree.ElementTree as ElementTree

from repro.circuits import carry_assignment, carry_circuit, expected_carry
from repro.evaluation import ContextValueTableEvaluator, CoreXPathEvaluator
from repro.graphs import figure5_graph, is_reachable
from repro.reductions import (
    reduce_circuit_to_core_xpath,
    reduce_reachability_to_pf,
)
from repro.xmlmodel import parse_xml, serialize


class TestSerializedReductionDocuments:
    """The reduction documents survive a serialise → reparse round trip."""

    def test_theorem32_document_roundtrip(self, carry):
        instance = reduce_circuit_to_core_xpath(carry, carry_assignment(True, False, True, True))
        reparsed = parse_xml(serialize(instance.document))
        assert reparsed.size == instance.document.size
        original = CoreXPathEvaluator(instance.document).evaluate_nodes(instance.query)
        after_roundtrip = CoreXPathEvaluator(reparsed).evaluate_nodes(instance.query)
        assert len(original) == len(after_roundtrip)

    def test_theorem32_document_is_valid_xml_for_elementtree(self, carry):
        instance = reduce_circuit_to_core_xpath(carry, carry_assignment(True, True, True, True))
        parsed = ElementTree.fromstring(serialize(instance.document))
        assert parsed.tag == "circuit"
        assert len(parsed.findall("./gate")) == carry.size()

    def test_theorem43_document_roundtrip(self):
        graph = figure5_graph()
        instance = reduce_reachability_to_pf(graph, 1, 3)
        reparsed = parse_xml(serialize(instance.document))
        result = CoreXPathEvaluator(reparsed).evaluate_nodes(instance.query)
        assert bool(result) == instance.expected == is_reachable(graph, 1, 3)


class TestReductionsWithDifferentEngines:
    def test_theorem32_same_verdict_from_cvt_and_core(self, carry):
        for bits in itertools.product([False, True], repeat=4):
            instance = reduce_circuit_to_core_xpath(carry, carry_assignment(*bits))
            via_core = bool(CoreXPathEvaluator(instance.document).evaluate_nodes(instance.query))
            via_cvt = bool(ContextValueTableEvaluator(instance.document).evaluate_nodes(instance.query))
            assert via_core == via_cvt == expected_carry(*bits)

    def test_reduction_metadata_is_informative(self, carry):
        instance = reduce_circuit_to_core_xpath(carry, carry_assignment(True, True, True, True))
        assert instance.metadata["inputs"] == 4
        assert instance.metadata["gates"] == 5
        assert instance.document_size > 0 and instance.query_size > 0
        assert "descendant-or-self" in instance.query_text()
