"""Spec-conformance battery: behaviours prescribed by the W3C XPath 1.0 recommendation.

Each case states the expected answer on a fixed reference document; the
expectations were derived from the recommendation's own prose and examples
(sections 2.x for axes and abbreviations, 3.4 for booleans, 3.5/3.7 for
numbers and lexical structure, 4.x for the core function library).  All
cases are checked on the context-value-table evaluator, and the Core XPath
subset additionally on the linear evaluator.
"""

import pytest

from repro.evaluation import ContextValueTableEvaluator, CoreXPathEvaluator
from repro.fragments import is_core_xpath
from repro.xmlmodel.parser import parse_xml

REFERENCE_XML = """
<doc>
  <chapter id="c1">
    <title>Intro</title>
    <para>first paragraph</para>
    <para>second paragraph</para>
    <section>
      <title>Background</title>
      <para>nested one</para>
    </section>
  </chapter>
  <chapter id="c2">
    <title>Methods</title>
    <para>only paragraph</para>
  </chapter>
  <chapter id="c3">
    <appendix/>
  </chapter>
</doc>
"""

DOCUMENT = parse_xml(REFERENCE_XML)


def count_of(query):
    return len(ContextValueTableEvaluator(DOCUMENT).evaluate_nodes(query))


def value_of(query):
    return ContextValueTableEvaluator(DOCUMENT).evaluate(query)


class TestAbbreviationEquivalences:
    """Section 2.5 of the recommendation: abbreviated syntax."""

    EQUIVALENCES = [
        ("//para", "/descendant-or-self::node()/child::para"),
        ("/doc/chapter", "/child::doc/child::chapter"),
        ("//chapter/para", "/descendant-or-self::node()/child::chapter/child::para"),
        ("//section/..", "//section/parent::node()"),
        ("//title/.", "//title/self::node()"),
        ("//chapter/@id", "//chapter/attribute::id"),
        ("//para[1]", "//para[position() = 1]"),
    ]

    @pytest.mark.parametrize("abbreviated,explicit", EQUIVALENCES)
    def test_abbreviated_equals_explicit(self, abbreviated, explicit):
        evaluator = ContextValueTableEvaluator(DOCUMENT)
        left = evaluator.evaluate_nodes(abbreviated)
        right = evaluator.evaluate_nodes(explicit)
        assert [n.order for n in left] == [n.order for n in right]


class TestAxisSemantics:
    def test_descendant_counts(self):
        assert count_of("//para") == 4
        assert count_of("/descendant::para") == 4
        assert count_of("/descendant::title") == 3

    def test_child_vs_descendant(self):
        assert count_of("/child::doc/child::para") == 0
        assert count_of("/child::doc/descendant::para") == 4

    def test_parent_of_title_nodes(self):
        parents = ContextValueTableEvaluator(DOCUMENT).evaluate_nodes("//title/parent::*")
        assert sorted(node.tag for node in parents) == ["chapter", "chapter", "section"]

    def test_following_sibling_within_chapter(self):
        # c1's title has 2 para siblings, the section's and c2's titles one each.
        assert count_of("//title/following-sibling::para") == 4

    def test_preceding_sibling(self):
        assert count_of("//para[preceding-sibling::para]") == 1

    def test_following_crosses_subtrees(self):
        assert count_of("//section/following::chapter") == 2

    def test_preceding_excludes_ancestors(self):
        assert count_of("/descendant::section/preceding::chapter") == 0
        assert count_of("/descendant::section/preceding::para") == 2

    def test_ancestor_or_self(self):
        assert count_of("//section/ancestor-or-self::*") == 3  # section, chapter c1, doc

    def test_attribute_axis_only_from_elements(self):
        assert count_of("//chapter/@id") == 3
        assert count_of("//@id") == 3

    def test_self_with_name_test_filters(self):
        assert count_of("//*[self::para]") == 4
        assert count_of("//*[self::zzz]") == 0


class TestPositionalSemantics:
    def test_position_is_per_context_node(self):
        # //para[1] selects the first para child of EACH parent (3 parents).
        assert count_of("//para[1]") == 3
        assert count_of("//para[2]") == 1

    def test_filter_expression_position_is_global(self):
        # (//para)[1] selects the single first para in document order.
        assert count_of("(//para)[1]") == 1

    def test_last_function(self):
        assert count_of("//para[position() = last()]") == 3
        assert count_of("/doc/chapter[last()]") == 1

    def test_position_on_reverse_axis_counts_backwards(self):
        evaluator = ContextValueTableEvaluator(DOCUMENT)
        result = evaluator.evaluate_nodes("//section/ancestor::*[1]")
        assert [node.tag for node in result] == ["chapter"]

    def test_numeric_predicate_after_boolean_predicate(self):
        assert count_of("//chapter[child::para][2]") == 1


class TestBooleanAndComparisonSemantics:
    def test_existential_equality_over_node_sets(self):
        assert value_of("//chapter/@id = 'c2'") is True
        assert value_of("//chapter/@id != 'c2'") is True  # some other chapter differs
        assert value_of("//chapter/@id = 'c9'") is False

    def test_empty_node_set_comparisons_are_false(self):
        assert value_of("//missing = //chapter") is False
        assert value_of("//missing = ''") is False
        assert value_of("//missing != //chapter") is False

    def test_boolean_conversion_of_node_sets(self):
        assert value_of("boolean(//appendix)") is True
        assert value_of("boolean(//missing)") is False

    def test_string_comparison_via_number_conversion(self):
        assert value_of("'3' < '22'") is True  # numeric, not lexicographic
        assert value_of("'abc' < 'abd'") is False  # NaN comparison

    def test_and_or_convert_operands(self):
        assert value_of("1 and 'x'") is True
        assert value_of("0 or ''") is False


class TestCoreFunctionLibrarySemantics:
    def test_count_and_sum(self):
        assert value_of("count(//para)") == 4.0
        assert value_of("count(//chapter[child::appendix])") == 1.0

    def test_string_value_of_element_concatenates_descendants(self):
        assert value_of("string(/doc/chapter[1]/section)") == "Backgroundnested one"

    def test_name_functions(self):
        assert value_of("name(//section/..)") == "chapter"
        assert value_of("local-name(//chapter[1]/@id)") == "id"

    def test_normalize_and_translate(self):
        assert value_of("normalize-space('  a  b ')") == "a b"
        assert value_of("translate('chapter', 'aeiou', 'AEIOU')") == "chAptEr"

    def test_number_edge_cases(self):
        assert value_of("number(true())") == 1.0
        assert str(value_of("number('not a number')")) == "nan"
        assert value_of("floor(-1.5)") == -2.0
        assert value_of("ceiling(-1.5)") == -1.0


class TestUnionSemantics:
    def test_union_is_set_union_in_document_order(self):
        evaluator = ContextValueTableEvaluator(DOCUMENT)
        result = evaluator.evaluate_nodes("//title | //para | //title")
        orders = [node.order for node in result]
        assert orders == sorted(orders)
        assert len(orders) == 7

    def test_union_with_empty_operand(self):
        assert count_of("//missing | //appendix") == 1


class TestCoreSubsetAgreement:
    """Every Core XPath case above must give the same answer on the linear engine."""

    CORE_QUERIES = [
        "//para",
        "/child::doc/descendant::para",
        "//title/parent::*",
        "//para[preceding-sibling::para]",
        "//section/following::chapter",
        "//*[self::para]",
        "//chapter[child::para and not(child::appendix)]",
        "//title | //para",
    ]

    @pytest.mark.parametrize("query", CORE_QUERIES)
    def test_core_engine_agreement(self, query):
        assert is_core_xpath(query)
        cvt = ContextValueTableEvaluator(DOCUMENT).evaluate_nodes(query)
        core = CoreXPathEvaluator(DOCUMENT).evaluate_nodes(query)
        assert [n.order for n in cvt] == [n.order for n in core]
