"""Integration tests: the four engines (and ElementTree) agree on shared workloads.

Any systematic disagreement between evaluation strategies would undermine
every complexity measurement in the benchmark harness, so this module
cross-checks them on realistic documents: the auction workload, the
generated random documents, and the book catalogue fixture.
"""

import pytest

from repro.bench import elementtree_count
from repro.evaluation import (
    ContextValueTableEvaluator,
    CoreXPathEvaluator,
    NaiveEvaluator,
    SingletonSuccessChecker,
)
from repro.fragments import is_core_xpath, is_pwf, is_pxpath
from repro.planner import PlanCache, evaluate_many, plan_query
from repro.xmlmodel import auction_document, random_document

CORE_QUERIES = [
    "/descendant::open_auction[child::bidder]",
    "/descendant::open_auction[not(child::bidder)]",
    "//person[following-sibling::person]",
    "//item[parent::open_auction[child::bidder and child::initial]]",
    "//bidder/following-sibling::bidder",
    "/child::site/child::open_auctions/child::open_auction/child::item",
    "//increase/ancestor::open_auction",
    "//open_auction[descendant::increase or not(child::bidder)]",
]

PWF_QUERIES = [
    "/descendant::open_auction[child::bidder and position() <= last()]",
    "/descendant::bidder[position() = last()]",
    "/descendant::open_auction[child::initial > 50]",
    "/descendant::item[attribute::region = 'europe']",
]


@pytest.fixture(scope="module")
def document():
    return auction_document(sellers=4, items_per_seller=4, seed=3)


class TestCoreQueriesAcrossEngines:
    @pytest.mark.parametrize("query", CORE_QUERIES)
    def test_naive_cvt_core_agree(self, document, query):
        assert is_core_xpath(query)
        cvt = ContextValueTableEvaluator(document).evaluate_nodes(query)
        core = CoreXPathEvaluator(document).evaluate_nodes(query)
        naive = NaiveEvaluator(document).evaluate_nodes(query)
        assert [n.order for n in cvt] == [n.order for n in core] == [n.order for n in naive]


class TestPwfQueriesAcrossEngines:
    @pytest.mark.parametrize("query", PWF_QUERIES)
    def test_cvt_and_singleton_agree(self, document, query):
        assert is_pwf(query) or is_pxpath(query)
        cvt = ContextValueTableEvaluator(document).evaluate_nodes(query)
        singleton = SingletonSuccessChecker(document).evaluate_nodes(query)
        assert [n.order for n in cvt] == [n.order for n in singleton]


class TestAgreementOnRandomDocuments:
    @pytest.mark.parametrize("seed", range(5))
    def test_core_engines_on_random_documents(self, seed):
        document = random_document(60, seed=seed)
        queries = [
            "//a[child::b]",
            "//b[ancestor::a and not(child::c)]",
            "//c/parent::*[following-sibling::*]",
            "//d | //a[descendant::d]",
        ]
        for query in queries:
            cvt = ContextValueTableEvaluator(document).evaluate_nodes(query)
            core = CoreXPathEvaluator(document).evaluate_nodes(query)
            assert [n.order for n in cvt] == [n.order for n in core], (seed, query)


class TestPlannerAutoDispatch:
    """The planner must pick the expected evaluator per fragment and its
    auto-dispatched results must agree with every direct engine."""

    @pytest.mark.parametrize("query", CORE_QUERIES)
    def test_core_queries_dispatch_to_core_and_agree(self, document, query):
        plan = plan_query(query)
        assert plan.engine == "core", plan.classification.most_specific
        planned = plan.run(document)
        direct = CoreXPathEvaluator(document).evaluate_nodes(query)
        cvt = ContextValueTableEvaluator(document).evaluate_nodes(query)
        assert [n.order for n in planned] == [n.order for n in direct]
        assert [n.order for n in planned] == [n.order for n in cvt]

    @pytest.mark.parametrize("query", PWF_QUERIES)
    def test_pwf_queries_dispatch_to_cvt_and_agree(self, document, query):
        plan = plan_query(query)
        assert plan.engine == "cvt", plan.classification.most_specific
        planned = plan.run(document)
        direct = ContextValueTableEvaluator(document).evaluate_nodes(query)
        assert [n.order for n in planned] == [n.order for n in direct]

    def test_batch_dispatch_agrees_with_direct_engines(self, document):
        queries = CORE_QUERIES + PWF_QUERIES
        results = evaluate_many(document, queries, cache=PlanCache())
        for query, planned in zip(queries, results):
            direct = ContextValueTableEvaluator(document).evaluate_nodes(query)
            assert [n.order for n in planned] == [n.order for n in direct], query


class TestAgreementWithElementTree:
    """Cross-check against the independently implemented ElementPath engine."""

    @pytest.mark.parametrize(
        "our_query,element_path",
        [
            ("/child::site/child::people/child::person", "./people/person"),
            ("/child::site/child::open_auctions/child::open_auction", "./open_auctions/open_auction"),
            ("/descendant::bidder", ".//bidder"),
            ("/descendant::open_auction/child::item", ".//open_auction/item"),
            ("/descendant::open_auction[child::bidder]", ".//open_auction[bidder]"),
            ("/descendant::item[attribute::region='europe']", ".//item[@region='europe']"),
        ],
    )
    def test_counts_match(self, document, our_query, element_path):
        ours = len(ContextValueTableEvaluator(document).evaluate_nodes(our_query))
        theirs = elementtree_count(document, element_path)
        assert ours == theirs

    def test_book_catalogue(self, book_document):
        ours = len(ContextValueTableEvaluator(book_document).evaluate_nodes("/descendant::book"))
        assert ours == elementtree_count(book_document, ".//book") == 3
