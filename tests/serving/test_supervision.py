"""Supervision tests: worker death, restart, replay, timeouts, drain.

Faults are injected through the environment (see
``tests/serving/faultinject.py``) so they reach fork children, spawn
children and supervisor-restarted workers alike; the SIGKILL acceptance
test additionally kills a live worker from outside, mid-batch, the way
an OOM killer would.
"""

import os
import signal
import threading
import time

import pytest

from repro.planner import evaluate_many_ids
from repro.serving import ServingTimeout, ShardedPool, WorkerCrashed
from repro.store import CorpusStore, StoreKeyError
from repro.xmlmodel import chain_document, parse_xml, wide_document

from tests.serving.faultinject import worker_fault

DOCS = {
    "letters": "<a><b/><b><c/></b><d><b/></d></a>",
    "row": "<r><x/><x/><x/><x/></r>",
}

START_METHODS = ["fork", "spawn"] if os.name == "posix" else ["spawn"]


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    root = tmp_path_factory.mktemp("supervision-store")
    store = CorpusStore(root)
    for key, xml in DOCS.items():
        store.put(xml, key=key)
    store.put(chain_document(80), key="chain")
    store.put(wide_document(80), key="wide")
    return store


_PARSED = {
    key: parse_xml(xml) for key, xml in DOCS.items()
}
_PARSED["chain"] = chain_document(80)
_PARSED["wide"] = wide_document(80)


def _mixed_batch(repeats):
    """A shard-spanning batch plus its in-process expected payloads."""
    from repro.evaluation import evaluate

    requests = [
        ("//b", "letters"),
        ("count(//x)", "row"),
        ("//*[child::*]", "chain"),
        ("//b[child::c]", "letters"),
        ("count(//*)", "wide"),
    ] * repeats
    expected = []
    for query, key in requests:
        document = _PARSED[key]
        local = evaluate(query, document, engine="auto")
        expected.append(
            [document.index.id_of(node) for node in local]
            if isinstance(local, list)
            else local
        )
    return requests, expected


def _payload(results):
    return [r.ids if r.is_node_set else r.value for r in results]


class TestRecovery:
    def test_sigkill_mid_batch_recovers_with_replay(self, store):
        """The acceptance scenario: SIGKILL from outside, mid-batch."""
        requests, expected = _mixed_batch(60)
        with ShardedPool(store, workers=2) as pool:
            victim = pool._pool[0].process.pid
            killer = threading.Timer(
                0.02, lambda: os.kill(victim, signal.SIGKILL)
            )
            killer.start()
            try:
                results = pool.evaluate_batch(requests)
            finally:
                killer.cancel()
            assert _payload(results) == expected
            stats = pool.stats()
            assert stats.restarts >= 1
            assert all(w.alive for w in stats.per_worker)
            acks = pool.drain()
            assert all(served is not None for served in acks)

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_crash_on_nth_query_recovers(self, store, tmp_path, start_method):
        """Deterministic in-flight death: restart + replay, both start methods."""
        requests, expected = _mixed_batch(20)
        with worker_fault("exit", "query", n=3, tmp_path=tmp_path):
            with ShardedPool(
                store, workers=2, start_method=start_method
            ) as pool:
                results = pool.evaluate_batch(requests)
                assert _payload(results) == expected
                stats = pool.stats()
                assert stats.restarts == 1
                assert stats.retries >= 1
                assert stats.timeouts == 0

    def test_midframe_death_recovers(self, store, tmp_path):
        """A torn reply frame (EOF mid-read) is a death, not a wire error."""
        requests, expected = _mixed_batch(20)
        with worker_fault("midframe", "query", n=2, tmp_path=tmp_path):
            with ShardedPool(store, workers=2) as pool:
                results = pool.evaluate_batch(requests)
                assert _payload(results) == expected
                assert pool.stats().restarts == 1

    def test_idle_death_is_revived_by_the_next_call(self, store):
        with ShardedPool(store, workers=2) as pool:
            for worker in pool._pool:
                worker.process.kill()
                worker.process.join(5)
            assert pool.evaluate("count(//x)", "row").value == 4.0
            stats = pool.stats()
            assert stats.restarts == 2
            assert all(w.alive for w in stats.per_worker)


class TestExhaustion:
    def test_retry_exhaustion_surfaces_worker_crashed(self, store, tmp_path):
        """Every incarnation dies on its first query: budgets run out."""
        with worker_fault("exit", "query", n=1, once=False, tmp_path=tmp_path):
            with ShardedPool(store, workers=1, warm=False) as pool:
                with pytest.raises(WorkerCrashed) as excinfo:
                    pool.evaluate_batch(
                        [("//b", "letters"), ("count(//x)", "row")]
                    )
                assert excinfo.value.worker == 0
                # sent once + max_retries replays, then the budget is gone
                assert excinfo.value.attempts == 3
                assert "retry budget" in str(excinfo.value)
                stats = pool.stats()
                assert stats.restarts == 3
                assert stats.retries >= 2

    def test_first_failure_by_input_order_is_raised(self, store, tmp_path):
        """Error attribution follows input order, not completion order."""
        with worker_fault("exit", "query", n=1, once=False, tmp_path=tmp_path):
            with ShardedPool(
                store, workers=1, warm=False, max_restarts=0
            ) as pool:
                with pytest.raises(WorkerCrashed) as excinfo:
                    pool.evaluate_batch(
                        [("//b", "letters"), ("count(//x)", "row")]
                    )
                # seq 0 was in flight on the crashed worker; it is the
                # batch's first failure and carries its own attempt count.
                assert excinfo.value.worker == 0
                assert excinfo.value.attempts == 1

    def test_permanently_failed_shard_fails_fast(self, store, tmp_path):
        with worker_fault("exit", "query", n=1, once=False, tmp_path=tmp_path):
            with ShardedPool(
                store, workers=1, warm=False, max_restarts=0
            ) as pool:
                with pytest.raises(WorkerCrashed):
                    pool.evaluate("//b", "letters")
                # No process left to crash: the failed slot answers
                # immediately with a typed error, and stats still work.
                start = time.monotonic()
                with pytest.raises(WorkerCrashed, match="permanently failed"):
                    pool.evaluate("count(//x)", "row")
                assert time.monotonic() - start < 1.0
                stats = pool.stats()
                assert stats.per_worker[0].alive is False
                assert "down" in stats.describe()


class TestTimeouts:
    def test_hung_worker_times_out_and_pool_recovers(self, store, tmp_path):
        with worker_fault("hang", "query", n=1, tmp_path=tmp_path):
            with ShardedPool(
                store, workers=1, warm=False, request_timeout=0.5
            ) as pool:
                start = time.monotonic()
                with pytest.raises(ServingTimeout) as excinfo:
                    pool.evaluate("//b", "letters")
                assert time.monotonic() - start < 5.0
                assert excinfo.value.worker == 0
                # the hung worker was killed and replaced; the pool serves
                assert pool.evaluate("count(//x)", "row").value == 4.0
                stats = pool.stats()
                assert stats.timeouts == 1
                assert stats.restarts == 1


class TestWarmUp:
    def test_warm_up_death_names_the_worker(self, store, tmp_path):
        """Satellite: never a raw EOFError/OSError out of warm_up."""
        with worker_fault("exit", "warm", once=False, tmp_path=tmp_path):
            with pytest.raises(WorkerCrashed, match="worker 0"):
                ShardedPool(store, workers=1, max_restarts=0)

    def test_warm_up_death_recovers_under_budget(self, store, tmp_path):
        with worker_fault("exit", "warm", tmp_path=tmp_path):
            with ShardedPool(store, workers=1) as pool:
                assert pool.evaluate("count(//x)", "row").value == 4.0
                assert pool.stats().restarts == 1


class TestDrainAndClose:
    def test_drain_acknowledges_all_served_requests(self, store):
        requests, expected = _mixed_batch(8)
        with ShardedPool(store, workers=2) as pool:
            results = pool.evaluate_batch(requests)
            assert _payload(results) == expected
            acks = pool.drain()
            assert all(served is not None for served in acks)
            assert sum(acks) == len(requests)
            assert pool.closed

    def test_close_deadline_is_pool_wide(self, store, tmp_path):
        """Satellite: N hung workers cost ~timeout total, not N × 2 × timeout."""
        with worker_fault("hang", "close", once=False, tmp_path=tmp_path):
            pool = ShardedPool(store, workers=2, warm=False)
            pool.evaluate("count(//x)", "row")  # ensure both loops are live
            start = time.monotonic()
            pool.close(timeout=1.0)
            elapsed = time.monotonic() - start
        assert elapsed < 1.9  # the old per-worker joins took ≥ 2 × 1.0s
        assert all(not w.process.is_alive() for w in pool._pool)

    def test_drain_timeout_terminates_stragglers(self, store, tmp_path):
        with worker_fault("hang", "close", once=False, tmp_path=tmp_path):
            pool = ShardedPool(store, workers=1, warm=False)
            pool.evaluate("count(//x)", "row")
            acks = pool.drain(timeout=0.5)
            assert acks == (None,)
            assert not pool._pool[0].process.is_alive()


class TestBatchValidation:
    def test_unknown_key_rejects_whole_batch_before_dispatch(self, store):
        """Satellite: no partial enqueue, and the rejection is counted."""
        with ShardedPool(store, workers=2, warm=False) as pool:
            with pytest.raises(StoreKeyError):
                pool.evaluate_batch(
                    [("//b", "letters"), ("//x", "no-such-key")]
                )
            stats = pool.stats()
            assert stats.rejected == 1
            assert stats.served == 0  # the valid request was never dispatched
            # the connection protocol is still clean
            assert pool.evaluate("count(//x)", "row").value == 4.0


class TestHealth:
    def test_ping_reports_liveness(self, store):
        with ShardedPool(store, workers=2, warm=False) as pool:
            assert pool.ping() == (True, True)
            pool._pool[1].process.kill()
            pool._pool[1].process.join(5)
            assert pool.ping() == (True, False)
            # the probe is read-only: supervision happens on the next call
            assert pool.evaluate("count(//x)", "row").value == 4.0
            assert pool.ping() == (True, True)


class TestDifferentialUnderFaults:
    def test_agrees_with_evaluate_many_ids_under_crashes(self, store, tmp_path):
        """Replay is invisible: crashing pool ≡ in-process id-native batch."""
        queries = ["//b", "//*[child::*]", "//b[child::c]", "//nosuch"]
        document = parse_xml(DOCS["letters"])
        expected = evaluate_many_ids(document, queries)
        requests = [(q, "letters") for q in queries] * 30
        with worker_fault(
            "exit", "query", n=40, once=False, tmp_path=tmp_path
        ):
            with ShardedPool(
                store, workers=2, warm=False, max_restarts=10_000,
                max_retries=10,
            ) as pool:
                results = pool.evaluate_batch(requests, ids=True)
        assert [r.ids for r in results] == expected * 30
