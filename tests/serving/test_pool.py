"""Lifecycle, routing, batching and failure tests for :class:`ShardedPool`."""

import pytest

from repro.errors import XPathEvaluationError, XPathSyntaxError
from repro.serving import ServingError, ShardedPool
from repro.store import CorpusStore, StoreKeyError, shard_of
from repro.xmlmodel import chain_document, parse_xml, wide_document

DOCS = {
    "books": "<catalogue><book><title>PODS</title></book><book/></catalogue>",
    "letters": "<a><b/><b><c/></b><d><b/></d></a>",
    "row": "<r><x/><x/><x/><x/></r>",
}


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    root = tmp_path_factory.mktemp("serving-store")
    store = CorpusStore(root)
    for key, xml in DOCS.items():
        store.put(xml, key=key)
    store.put(chain_document(60), key="chain")
    store.put(wide_document(60), key="wide")
    return store


@pytest.fixture(scope="module")
def pool(store):
    with ShardedPool(store, workers=2) as pool:
        yield pool


class TestEvaluation:
    def test_node_set_ids_and_lazy_nodes(self, pool):
        result = pool.evaluate("//b[child::c]", "letters")
        assert result.engine == "sharded"
        assert result.ids == [3]
        assert [node.tag for node in result.nodes] == ["b"]

    def test_ids_only_callers_never_hydrate_in_the_parent(self, store):
        with ShardedPool(store, workers=2) as pool:
            result = pool.evaluate("//b", "letters", ids=True)
            assert result.ids == [2, 3, 6]
            # the worker evaluated; the parent deferred its own snapshot
            # load behind a lazy document...
            [lazy] = pool._documents.values()
            assert not lazy.hydrated
            # ...which resolves exactly when nodes are materialised
            assert [node.tag for node in result.nodes] == ["b", "b", "b"]
            assert lazy.hydrated

    def test_scalar(self, pool):
        assert pool.evaluate("count(//x)", "row").value == 4.0

    def test_string_and_boolean_scalars(self, pool):
        assert pool.evaluate("name(/*)", "row").value == "r"
        assert pool.evaluate("count(//x) > 2", "row").value is True

    def test_results_match_in_process(self, pool, store):
        from repro.evaluation import evaluate

        for key, xml in DOCS.items():
            document = parse_xml(xml)
            for query in ("//b", "//*[child::*]", "count(//*)"):
                sharded = pool.evaluate(query, key)
                local = evaluate(query, document, engine="auto")
                if sharded.is_node_set:
                    assert sharded.ids == [
                        document.index.id_of(node) for node in local
                    ], (key, query)
                else:
                    assert sharded.value == local, (key, query)

    def test_empty_result(self, pool):
        assert pool.evaluate("//nosuch", "row").ids == []

    def test_batch_preserves_input_order(self, pool):
        requests = [
            ("//b", "letters"),
            ("count(//x)", "row"),
            ("//book", "books"),
            ("//b[child::c]", "letters"),
            ("count(//book)", "books"),
        ] * 8  # larger than one window round per worker
        results = pool.evaluate_batch(requests)
        payload = [r.ids if r.is_node_set else r.value for r in results]
        assert payload == [[2, 3, 6], 4.0, [2, 5], [3], 2.0] * 8

    def test_batch_accepts_parsed_queries(self, pool):
        from repro.xpath import parse

        result = pool.evaluate_batch([(parse("//b"), "letters")])[0]
        assert result.ids == [2, 3, 6]

    def test_ids_mode_rejects_scalars(self, pool):
        with pytest.raises(XPathEvaluationError, match="not a node-set"):
            pool.evaluate("count(//x)", "row", ids=True)

    def test_empty_batch(self, pool):
        assert pool.evaluate_batch([]) == []

    def test_bad_request_shape(self, pool):
        with pytest.raises(TypeError, match="query, key"):
            pool.evaluate_batch(["//b"])


class TestErrorPropagation:
    def test_unknown_key(self, pool):
        with pytest.raises(StoreKeyError, match="no document"):
            pool.evaluate("//b", "missing")

    def test_syntax_error_rebuilt_with_type(self, pool):
        with pytest.raises(XPathSyntaxError):
            pool.evaluate("//b[", "letters")

    def test_worker_survives_errors(self, pool):
        with pytest.raises(XPathSyntaxError):
            pool.evaluate("//(", "letters")
        assert pool.evaluate("count(//x)", "row").value == 4.0

    def test_batch_with_failures_raises_first_by_input_order(self, pool):
        with pytest.raises(XPathEvaluationError):
            pool.evaluate_batch(
                [("//b", "letters"), ("count(//x)", "row"), ("//b", "letters")],
                ids=True,
            )
        # the pipes are clean afterwards: the next batch works
        assert pool.evaluate("//b", "letters").ids == [2, 3, 6]


class TestRoutingAndWarmup:
    def test_routing_is_deterministic_by_content_hash(self, pool, store):
        for entry in store.list():
            assert pool.shard_for(entry.key) == shard_of(entry.hash, pool.workers)

    def test_shard_layout_partitions_the_manifest(self, store):
        layout = store.shard_layout(3)
        keys = sorted(entry.key for shard in layout for entry in shard)
        assert keys == store.keys()
        for index, shard in enumerate(layout):
            for entry in shard:
                assert shard_of(entry.hash, 3) == index

    def test_warm_pool_hydrated_every_key_before_first_query(self, store):
        with ShardedPool(store, workers=2) as pool:
            stats = pool.stats()
            assert stats.served == 0
            assert stats.documents == len(store)
            assert stats.store_loads == len(store)

    def test_cold_pool_hydrates_on_demand(self, store):
        with ShardedPool(store, workers=2, warm=False) as pool:
            assert pool.stats().documents == 0
            assert pool.evaluate("count(//x)", "row").value == 4.0
            assert pool.stats().documents == 1

    def test_stats_merge_accounts_for_every_request(self, store):
        with ShardedPool(store, workers=3) as pool:
            requests = [("//b", "letters"), ("//book", "books"), ("//x", "row")] * 4
            pool.evaluate_batch(requests)
            stats = pool.stats()
            assert stats.workers == 3
            assert stats.served == len(requests)
            assert sum(w.served for w in stats.per_worker) == len(requests)
            assert sum(stats.dispatch.values()) == len(requests)
            assert "worker process(es)" in stats.describe()


class TestLifecycle:
    def test_close_is_idempotent_and_workers_exit(self, store):
        pool = ShardedPool(store, workers=2, warm=False)
        processes = [worker.process for worker in pool._pool]
        pool.close()
        pool.close()
        assert pool.closed
        assert all(not process.is_alive() for process in processes)
        assert all(process.exitcode == 0 for process in processes)

    def test_closed_pool_refuses_work(self, store):
        pool = ShardedPool(store, workers=1, warm=False)
        pool.close()
        with pytest.raises(ServingError, match="closed"):
            pool.evaluate("//b", "letters")
        with pytest.raises(ServingError, match="closed"):
            pool.stats()

    def test_dead_worker_recovers_transparently(self, store):
        # Supervision: a killed worker restarts and the query still answers.
        with ShardedPool(store, workers=1, warm=False) as pool:
            pool._pool[0].process.kill()
            pool._pool[0].process.join(5)
            result = pool.evaluate("count(//x)", "row")
            assert result.value == 4.0
            assert pool.stats().restarts == 1

    def test_dead_worker_without_restart_budget_raises(self, store):
        from repro.serving import WorkerCrashed

        with ShardedPool(store, workers=1, warm=False, max_restarts=0) as pool:
            pool._pool[0].process.kill()
            pool._pool[0].process.join(5)
            with pytest.raises(WorkerCrashed, match="worker 0"):
                pool.evaluate("//b", "letters")

    def test_spawn_start_method(self, store):
        # spawn children start a fresh interpreter: this covers the
        # PYTHONPATH hand-off that makes a source checkout importable.
        with ShardedPool(
            store, workers=1, warm=False, start_method="spawn"
        ) as pool:
            assert pool.start_method == "spawn"
            assert pool.evaluate("count(//x)", "row").value == 4.0

    def test_worker_count_validated(self, store):
        with pytest.raises(ValueError, match="workers"):
            ShardedPool(store, workers=0)

    def test_store_accepts_a_path(self, store):
        with ShardedPool(store.root, workers=1, warm=False) as pool:
            assert pool.evaluate("count(//x)", "row").value == 4.0

    def test_concurrent_drain_and_close_are_idempotent(self, store):
        """Regression: drain()/close() racing from two threads must not
        shut the workers down twice or deadlock.

        This is exactly the network front door's exposure: a signal
        handler calls close() while the serving thread calls drain().
        Before the lifecycle lock, both threads could pass the closed
        check and run _shutdown concurrently on the same pipes.
        """
        import threading

        for _ in range(3):  # a few rounds to give the race a chance
            pool = ShardedPool(store, workers=2, warm=False)
            barrier = threading.Barrier(4)
            outcomes = []

            def race(method):
                barrier.wait()
                try:
                    method()
                    outcomes.append("ok")
                except ServingError:
                    outcomes.append("closed")  # lost the race: acceptable
                except BaseException as error:  # the regression would land here
                    outcomes.append(error)

            threads = [
                threading.Thread(target=race, args=(method,))
                for method in (pool.drain, pool.close, pool.drain, pool.close)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30.0)
            assert not any(thread.is_alive() for thread in threads)
            assert pool.closed
            assert all(outcome in ("ok", "closed") for outcome in outcomes), outcomes
            # exactly one thread ran the shutdown; close() after the fact
            # observes a closed pool silently, drain() raises typed
            assert outcomes.count("ok") >= 1
            pool.close()  # still idempotent afterwards

    def test_ping_racing_drain_stays_typed(self, store):
        """Regression: ping() must snapshot the roster atomically with the
        open check (under the lifecycle lock).

        Before the fix, ping() read ``self._pool`` after its open check
        without holding ``_lifecycle_lock``: a drain() landing in between
        closed the pipes mid-probe and the probe surfaced raw ``OSError``
        from the dead pipe instead of the typed taxonomy.  The contract
        is: every ping() call either returns a per-worker bool tuple or
        raises ``ServingError`` — nothing untyped, no deadlock.
        """
        import threading

        for _ in range(3):
            pool = ShardedPool(store, workers=2, warm=False)
            barrier = threading.Barrier(2)
            outcomes = []

            def probe():
                barrier.wait()
                for _ in range(20):
                    try:
                        health = pool.ping(timeout=1.0)
                    except ServingError:
                        outcomes.append("closed")
                        return  # the pool stays closed; nothing more to see
                    except BaseException as error:  # the regression lands here
                        outcomes.append(error)
                        return
                    assert all(isinstance(h, bool) for h in health)
                    outcomes.append("pinged")

            prober = threading.Thread(target=probe)
            prober.start()
            barrier.wait()
            try:
                pool.drain(timeout=5.0)
            except ServingError:
                pass  # prober cannot trigger this, but stay lenient
            prober.join(30.0)
            assert not prober.is_alive()
            assert outcomes, "prober recorded nothing"
            assert all(
                outcome in ("pinged", "closed") for outcome in outcomes
            ), outcomes
            with pytest.raises(ServingError, match="closed"):
                pool.ping()
            pool.close()


class TestEngineIntegration:
    def test_serve_requires_a_store(self):
        from repro.engine import XPathEngine

        with pytest.raises(RuntimeError, match="attach_store"):
            XPathEngine().serve()

    def test_evaluate_sharded_matches_in_process(self, store):
        from repro.engine import XPathEngine
        from repro.store import StoreKey

        engine = XPathEngine().attach_store(store)
        try:
            requests = [
                ("//b[child::c]", "letters"),
                ("count(//book)", "books"),
                ("//x", "row"),
            ]
            sharded = engine.evaluate_sharded(requests, workers=2)
            for (query, key), result in zip(requests, sharded):
                local = engine.evaluate(query, StoreKey(key))
                if result.is_node_set:
                    assert result.ids == local.ids
                else:
                    assert result.value == local.value
        finally:
            engine.shutdown_serving()

    def test_serve_caches_pool_and_recreates_on_new_worker_count(self, store):
        from repro.engine import XPathEngine

        engine = XPathEngine().attach_store(store)
        try:
            pool = engine.serve(workers=2, warm=False)
            assert engine.serve(workers=2) is pool
            bigger = engine.serve(workers=3, warm=False)
            assert pool.closed and not bigger.closed
            assert engine.serving is bigger
        finally:
            engine.shutdown_serving()
        assert engine.serving is None

    def test_engine_stats_merge_worker_counters(self, store):
        from repro.engine import XPathEngine

        engine = XPathEngine().attach_store(store)
        try:
            engine.serve(workers=2, warm=False)
            engine.evaluate_sharded([("//b", "letters")], ids=True)
            stats = engine.stats()
            assert stats.serving is not None
            assert stats.serving.served == 1
            assert "serving" in stats.describe()
        finally:
            engine.shutdown_serving()
        assert XPathEngine().attach_store(store).stats().serving is None
