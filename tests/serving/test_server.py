"""Network front-door tests: handshake, protocols, admission, lifecycle.

The server under test runs exactly as in production — background thread,
real TCP sockets on loopback, a live worker pool behind it.  Admission
tests hold the server's dispatch lock to freeze the pool deterministically
(no sleeps, no load races); supervision tests inject worker faults through
the environment the same way the pool's own suite does.
"""

import json
import socket
import threading
import time

import pytest

from repro.evaluation import evaluate
from repro.serving import (
    ConnectionDrained,
    Overloaded,
    ServingClient,
    ServingError,
    ShardedPool,
    XPathServer,
    wire,
)
from repro.serving.client import json_roundtrip
from repro.store import CorpusStore, StoreKeyError
from repro.xmlmodel import parse_xml

from tests.serving.faultinject import worker_fault

DOCS = {
    "letters": "<a><b/><b><c/></b><d><b/></d></a>",
    "row": "<r><x/><x/><x/><x/></r>",
}

_PARSED = {key: parse_xml(xml) for key, xml in DOCS.items()}


def _expected_ids(query, key):
    document = _PARSED[key]
    return [document.index.id_of(node) for node in evaluate(query, document)]


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    root = tmp_path_factory.mktemp("server-store")
    store = CorpusStore(root)
    for key, xml in DOCS.items():
        store.put(xml, key=key)
    return store


@pytest.fixture(scope="module")
def pool(store):
    with ShardedPool(store, workers=2) as pool:
        yield pool


@pytest.fixture()
def server(pool):
    server = XPathServer(pool, idle_timeout=None)
    with server as address:
        yield server, address
    # __exit__ drained; a second shutdown must be a no-op
    server.shutdown()


def _raw_binary_connection(address):
    """A hand-rolled binary connection: preamble sent, HELLO consumed."""
    sock = socket.create_connection(address, timeout=10.0)
    sock.settimeout(10.0)
    sock.sendall(wire.MAGIC)
    hello = _read_frame(sock)
    assert hello.type == wire.MSG_HELLO
    return sock


def _read_frame(sock):
    def exactly(size):
        data = b""
        while len(data) < size:
            chunk = sock.recv(size - len(data))
            assert chunk, "server closed the connection mid-frame"
            data += chunk
        return data

    return wire.decode(exactly(wire.framed_length(exactly(4))))


class TestHandshake:
    def test_hello_carries_version_pid_banner(self, server):
        server_obj, (host, port) = server
        with ServingClient(host, port) as client:
            import os

            assert client.server_pid == os.getpid()
            assert client.banner == "repro-xpath"

    def test_bad_preamble_closes_the_connection(self, server):
        _, address = server
        sock = socket.create_connection(address, timeout=5.0)
        sock.settimeout(5.0)
        sock.sendall(b"GET / HTTP/1.1\r\n\r\n")
        assert sock.recv(1) == b""  # no HELLO, just EOF
        sock.close()

    def test_reply_frame_from_client_is_a_protocol_error(self, server):
        _, address = server
        sock = _raw_binary_connection(address)
        sock.sendall(wire.encode_framed(wire.encode_result_ids(0, [1])))
        assert sock.recv(1) == b""
        sock.close()

    def test_oversized_stream_frame_is_rejected(self, server):
        _, address = server
        sock = _raw_binary_connection(address)
        sock.sendall((wire.MAX_FRAME + 1).to_bytes(4, "little"))
        assert sock.recv(1) == b""
        sock.close()


class TestBinaryProtocol:
    def test_node_set_query(self, server):
        _, (host, port) = server
        with ServingClient(host, port) as client:
            result = client.evaluate("//b", "letters")
            assert result.is_node_set
            assert result.ids == _expected_ids("//b", "letters")

    def test_scalar_query(self, server):
        _, (host, port) = server
        with ServingClient(host, port) as client:
            result = client.evaluate("count(//x)", "row")
            assert not result.is_node_set
            assert result.value == 4.0

    def test_mixed_batch_in_order(self, server):
        _, (host, port) = server
        requests = [
            ("//b", "letters"),
            ("count(//x)", "row"),
            ("//b[child::c]", "letters"),
        ] * 20
        with ServingClient(host, port, window=8) as client:
            results = client.evaluate_batch(requests)
        for (query, key), result in zip(requests, results):
            if result.is_node_set:
                assert result.ids == _expected_ids(query, key)
            else:
                assert result.value == 4.0

    def test_worker_errors_come_back_typed(self, server):
        from repro.errors import XPathSyntaxError

        _, (host, port) = server
        with ServingClient(host, port) as client:
            with pytest.raises(XPathSyntaxError):
                client.evaluate("//b[", "letters")

    def test_unknown_key_fails_only_its_slot(self, server):
        _, (host, port) = server
        with ServingClient(host, port) as client:
            results = client.evaluate_batch(
                [("//b", "letters"), ("//b", "missing"), ("count(//x)", "row")],
                return_errors=True,
            )
        assert results[0].ids == _expected_ids("//b", "letters")
        assert isinstance(results[1], StoreKeyError)
        assert results[2].value == 4.0

    def test_ids_mode_error_contract(self, server):
        from repro.errors import XPathEvaluationError

        _, (host, port) = server
        with ServingClient(host, port) as client:
            with pytest.raises(XPathEvaluationError, match="not a node-set"):
                client.evaluate("count(//x)", "row", ids=True)

    def test_ping_answers_without_touching_the_pool(self, server):
        import os

        _, (host, port) = server
        with ServingClient(host, port) as client:
            pid, rtt = client.ping(seq=17)
            assert pid == os.getpid()
            assert rtt < 5.0

    def test_stats_over_the_wire(self, server):
        _, (host, port) = server
        with ServingClient(host, port) as client:
            client.evaluate("//b", "letters")
            stats = client.server_stats()
        assert stats["server"]["served"] >= 1
        assert stats["server"]["max_inflight"] > 0
        assert stats["pool"]["workers"] == 2
        assert stats["pool"]["served"] >= 1

    def test_client_drain_receipt_counts_this_connection(self, server):
        _, (host, port) = server
        client = ServingClient(host, port)
        client.evaluate("//b", "letters")
        client.evaluate("count(//x)", "row")
        assert client.drain() == 2
        with pytest.raises(ServingError, match="closed"):
            client.evaluate("//b", "letters")


class TestJsonShim:
    def test_query_and_scalar_lines(self, server):
        _, (host, port) = server
        replies = json_roundtrip(host, port, [
            {"key": "letters", "query": "//b", "seq": 1},
            {"key": "row", "query": "count(//x)", "seq": 2},
        ])
        by_seq = {reply["seq"]: reply for reply in replies}
        assert by_seq[1]["ids"] == _expected_ids("//b", "letters")
        assert by_seq[2]["value"] == 4.0

    def test_error_lines_are_typed(self, server):
        _, (host, port) = server
        (reply,) = json_roundtrip(
            host, port, [{"key": "letters", "query": "//b[", "seq": 9}]
        )
        assert reply["seq"] == 9
        assert reply["error"]["type"] == "XPathSyntaxError"

    def test_ping_and_stats_ops(self, server):
        import os

        _, (host, port) = server
        replies = json_roundtrip(host, port, [{"op": "ping"}, {"op": "stats"}])
        assert replies[0] == {"pong": True, "pid": os.getpid()}
        assert replies[1]["stats"]["pool"]["workers"] == 2

    def test_malformed_json_reports_and_continues(self, server):
        _, (host, port) = server
        replies = json_roundtrip(host, port, [
            "{this is not json",  # '{' selects the shim, then fails to parse
            {"key": "row", "query": "count(//x)", "seq": 2},
        ])
        assert replies[0]["error"]["type"] == "WireError"
        assert replies[1]["value"] == 4.0

    def test_missing_fields_are_request_errors(self, server):
        _, (host, port) = server
        (reply,) = json_roundtrip(host, port, [{"query": "//b"}])
        assert "key" in reply["error"]["message"]


class TestAdmissionControl:
    def test_overload_rejections_are_typed_and_bounded(self, pool):
        """Freeze the dispatcher; every admit beyond the bound must reject.

        Holding the server's dispatch lock stalls the dispatcher thread
        mid-conversation, so admitted requests cannot complete: the
        (N+K)-request flood then deterministically yields N admissions
        and K typed OVERLOADED rejections — nothing queues.
        """
        server = XPathServer(pool, max_inflight=4)
        with server as address:
            sock = _raw_binary_connection(address)
            with server._dispatch_lock:
                flood = b"".join(
                    wire.encode_framed(wire.encode_query(seq, "letters", "//b"))
                    for seq in range(12)
                )
                sock.sendall(flood)
                rejected = []
                while len(rejected) < 8:
                    message = _read_frame(sock)
                    assert message.type == wire.MSG_OVERLOADED
                    assert message.capacity == 4
                    assert message.inflight <= 4
                    rejected.append(message.seq)
            # lock released: the 4 admitted requests now complete
            answered = [_read_frame(sock) for _ in range(4)]
            assert {m.type for m in answered} == {wire.MSG_RESULT_IDS}
            assert sorted(rejected) + sorted(m.seq for m in answered) == list(
                range(4, 12)
            ) + [0, 1, 2, 3]
            assert server._peak_inflight <= 4
            sock.close()

    def test_sync_client_raises_typed_overloaded(self, pool):
        # max_inflight=0 is maintenance mode: every request rejects, so
        # the client-side typed raise is deterministic.
        server = XPathServer(pool, max_inflight=0)
        with server as (host, port):
            with ServingClient(host, port) as client:
                with pytest.raises(Overloaded) as info:
                    client.evaluate_batch([("//b", "letters")] * 16, ids=True)
                assert info.value.capacity == 0
                # return_errors collects them instead of raising
                results = client.evaluate_batch(
                    [("//b", "letters")] * 4, return_errors=True
                )
                assert all(isinstance(r, Overloaded) for r in results)

    def test_json_shim_reports_overload(self, pool):
        server = XPathServer(pool, max_inflight=1)
        with server as (host, port):
            with server._dispatch_lock:
                sock = socket.create_connection((host, port), timeout=10.0)
                sock.settimeout(10.0)
                lines = b"".join(
                    json.dumps({"key": "letters", "query": "//b", "seq": i}).encode()
                    + b"\n"
                    for i in range(6)
                )
                sock.sendall(lines)
                overloaded = 0
                buffer = b""
                while overloaded < 5:
                    chunk = sock.recv(65536)
                    assert chunk
                    buffer += chunk
                    while b"\n" in buffer:
                        line, _, buffer = buffer.partition(b"\n")
                        reply = json.loads(line)
                        assert reply.get("overloaded") is True
                        assert reply["capacity"] == 1
                        overloaded += 1
            sock.close()

    def test_draining_server_rejects_new_requests(self, pool):
        server = XPathServer(pool)
        with server as address:
            sock = _raw_binary_connection(address)
            server._draining = True  # drain takes effect at admission
            try:
                sock.sendall(
                    wire.encode_framed(wire.encode_query(1, "letters", "//b"))
                )
                assert _read_frame(sock).type == wire.MSG_OVERLOADED
            finally:
                server._draining = False
                sock.close()


class TestLifecycle:
    def test_idle_timeout_closes_quiet_connections(self, pool):
        server = XPathServer(pool, idle_timeout=0.2)
        with server as address:
            sock = _raw_binary_connection(address)
            started = time.monotonic()
            assert sock.recv(1) == b""  # server hangs up on us
            assert 0.05 < time.monotonic() - started < 5.0
            assert int(server._idle_closed_total.value()) == 1
            sock.close()

    def test_idle_timeout_spares_connections_awaiting_responses(self, pool):
        server = XPathServer(pool, idle_timeout=0.15)
        with server as address:
            sock = _raw_binary_connection(address)
            with server._dispatch_lock:  # freeze: the response stays owed
                sock.sendall(
                    wire.encode_framed(wire.encode_query(5, "letters", "//b"))
                )
                time.sleep(0.5)  # several idle windows pass while waiting
            message = _read_frame(sock)
            assert (message.type, message.seq) == (wire.MSG_RESULT_IDS, 5)
            sock.close()

    def test_drain_sends_receipts_and_stops_listening(self, pool):
        server = XPathServer(pool)
        host, port = server.start_background()
        client = ServingClient(host, port)
        client.evaluate("//b", "letters")
        server.shutdown(graceful=True)
        # the connected client got a DRAINED receipt with its served count
        message = client._read_message()
        assert message.type == wire.MSG_DRAINED
        assert message.served == 1
        client.close()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=1.0)

    def test_shutdown_is_idempotent_and_threadsafe(self, pool):
        server = XPathServer(pool)
        server.start_background()
        failures = []

        def stop():
            try:
                server.shutdown(graceful=True)
            except Exception as error:  # pragma: no cover - the regression
                failures.append(error)

        threads = [threading.Thread(target=stop) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not failures
        assert not pool.closed  # the pool was borrowed, never owned

    def test_server_owns_pool_built_from_store(self, store):
        server = XPathServer(store, workers=2)
        with server as (host, port):
            with ServingClient(host, port) as client:
                assert client.evaluate("//b", "letters").ids == _expected_ids(
                    "//b", "letters"
                )
            owned = server.pool
        assert owned.closed  # drained with the server

    def test_start_background_propagates_bind_errors(self, pool):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        server = XPathServer(pool, port=port)
        try:
            with pytest.raises(OSError):
                server.start_background()
        finally:
            blocker.close()


class TestSupervisionEdges:
    def test_worker_crash_mid_batch_is_invisible_to_network_clients(
        self, store, tmp_path
    ):
        """Satellite: a worker dies mid-batch; the client sees only answers."""
        requests = [
            ("//b", "letters"),
            ("count(//x)", "row"),
            ("//b[child::c]", "letters"),
        ] * 20
        with worker_fault("exit", "query", n=7, tmp_path=tmp_path):
            with ShardedPool(store, workers=2) as pool:
                server = XPathServer(pool)
                with server as (host, port):
                    with ServingClient(host, port, window=16) as client:
                        results = client.evaluate_batch(requests)
                        stats = client.server_stats()
        assert stats["pool"]["restarts"] >= 1  # the crash really happened
        for (query, key), result in zip(requests, results):
            if result.is_node_set:
                assert result.ids == _expected_ids(query, key)
            else:
                assert result.value == 4.0

    def test_drain_flushes_a_slow_client_before_the_receipt(self, pool):
        """Satellite: drain waits for a client that is slow to read."""
        server = XPathServer(pool, drain_timeout=10.0)
        host, port = server.start_background()
        sock = _raw_binary_connection((host, port))
        sock.sendall(b"".join(
            wire.encode_framed(wire.encode_query(seq, "letters", "//b"))
            for seq in range(10)
        ))
        # Be a slow reader: give the responses time to be owed, then let
        # the drain (started concurrently) race our delayed reads.
        time.sleep(0.2)
        drainer = threading.Thread(
            target=server.shutdown, kwargs={"graceful": True}
        )
        drainer.start()
        messages = []
        while True:
            time.sleep(0.05)  # still slow, one frame at a time
            message = _read_frame(sock)
            messages.append(message)
            if message.type == wire.MSG_DRAINED:
                break
        drainer.join(30.0)
        assert not drainer.is_alive()
        answered = [m for m in messages if m.type == wire.MSG_RESULT_IDS]
        assert sorted(m.seq for m in answered) == list(range(10))
        assert messages[-1].served == 10
        assert sock.recv(1) == b""  # connection closed after the receipt
        sock.close()

    def test_client_marks_unanswered_requests_on_drained(self):
        """A DRAINED receipt mid-batch fails the unanswered tail, typed."""
        from repro.serving.client import _BatchState

        state = _BatchState([("//a", "k")] * 4, ids=False)
        frames = state.frames()
        next(frames)  # one request on the wire, three unsent
        state.absorb(wire.decode(wire.encode_drained(1, 4242)))
        assert state.drained
        assert all(
            isinstance(result, ConnectionDrained) for result in state.results
        )
        with pytest.raises(ConnectionDrained):
            state.finish(return_errors=False)
