"""Unit tests for the id-native wire format (framing, round-trips, errors)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import wire


class TestQueryFrames:
    def test_round_trip(self):
        frame = wire.encode_query(42, "catalogue", "//book[child::title]")
        message = wire.decode(frame)
        assert message.type == wire.MSG_QUERY
        assert (message.seq, message.key, message.query) == (
            42, "catalogue", "//book[child::title]"
        )
        assert not message.ids_only

    def test_ids_flag(self):
        message = wire.decode(wire.encode_query(0, "k", "//a", ids_only=True))
        assert message.ids_only
        assert message.flags & wire.FLAG_IDS

    def test_unicode_key_and_query(self):
        frame = wire.encode_query(1, "документы", '//a[@x="émü"]')
        message = wire.decode(frame)
        assert message.key == "документы"
        assert message.query == '//a[@x="émü"]'


class TestResultFrames:
    @pytest.mark.parametrize(
        "ids", [[], [0], [2, 3, 11], list(range(10_000))]
    )
    def test_id_arrays_round_trip(self, ids):
        message = wire.decode(wire.encode_result_ids(7, ids))
        assert message.type == wire.MSG_RESULT_IDS
        assert message.seq == 7
        assert message.ids == ids

    def test_id_array_wire_size_is_four_bytes_per_id(self):
        empty = wire.encode_result_ids(0, [])
        thousand = wire.encode_result_ids(0, list(range(1000)))
        assert len(thousand) - len(empty) == 4 * 1000

    @pytest.mark.parametrize("value", [2.0, -1.5, float("inf"), 0.0])
    def test_float_values(self, value):
        assert wire.decode(wire.encode_result_value(3, value)).value == value

    def test_float_nan(self):
        decoded = wire.decode(wire.encode_result_value(3, float("nan"))).value
        assert decoded != decoded  # NaN round-trips as NaN

    @pytest.mark.parametrize("value", [True, False])
    def test_bool_values_stay_bool(self, value):
        decoded = wire.decode(wire.encode_result_value(1, value)).value
        assert decoded is value

    def test_string_values(self):
        decoded = wire.decode(wire.encode_result_value(1, "héllo ")).value
        assert decoded == "héllo "

    def test_int_scalars_become_floats(self):
        # XPath 1.0 numbers are doubles; the wire keeps that convention.
        decoded = wire.decode(wire.encode_result_value(1, 7)).value
        assert decoded == 7.0 and isinstance(decoded, float)

    def test_unencodable_value_raises(self):
        with pytest.raises(wire.WireError, match="cannot encode"):
            wire.encode_result_value(1, object())


class TestControlFrames:
    def test_error_round_trip(self):
        frame = wire.encode_error(9, "XPathSyntaxError", "unexpected token")
        message = wire.decode(frame)
        assert message.type == wire.MSG_ERROR
        assert message.seq == 9
        assert message.error == ("XPathSyntaxError", "unexpected token")

    def test_warm_and_ready(self):
        message = wire.decode(wire.encode_warm(["a", "b", "c"]))
        assert message.type == wire.MSG_WARM
        assert message.keys == ("a", "b", "c")
        ready = wire.decode(wire.encode_ready(3, 1234))
        assert (ready.hydrated, ready.pid) == (3, 1234)

    def test_warm_empty(self):
        assert wire.decode(wire.encode_warm([])).keys == ()

    def test_stats_round_trip(self):
        assert wire.decode(wire.encode_stats_request()).type == wire.MSG_STATS
        payload = {"worker": 0, "dispatch": {"core": 3}}
        message = wire.decode(wire.encode_stats_reply(payload))
        assert message.payload == payload

    def test_shutdown(self):
        assert wire.decode(wire.encode_shutdown()).type == wire.MSG_SHUTDOWN


class TestTelemetryFrames:
    def test_query_trace_flag(self):
        message = wire.decode(wire.encode_query(3, "k", "//a", trace=True))
        assert message.wants_trace
        assert message.flags & wire.FLAG_TRACE
        assert not wire.decode(wire.encode_query(3, "k", "//a")).wants_trace

    def test_trace_round_trip(self):
        payload = {
            "tier": "worker",
            "spans": [{"name": "worker-eval", "offset": 0.0, "duration": 0.01}],
            "children": [{"tier": "engine", "spans": [], "children": []}],
        }
        message = wire.decode(wire.encode_trace(11, payload))
        assert message.type == wire.MSG_TRACE
        assert message.seq == 11
        assert message.payload == payload

    def test_metrics_request_round_trip(self):
        message = wire.decode(wire.encode_metrics_request(wire.METRICS_JSON))
        assert message.type == wire.MSG_METRICS
        assert message.flags == wire.METRICS_JSON
        prometheus = wire.decode(
            wire.encode_metrics_request(wire.METRICS_PROMETHEUS)
        )
        assert prometheus.flags == wire.METRICS_PROMETHEUS

    def test_metrics_reply_round_trip(self):
        body = '# HELP c_total hélp\n# TYPE c_total counter\nc_total 3\n'
        message = wire.decode(
            wire.encode_metrics_reply(wire.METRICS_PROMETHEUS, body)
        )
        assert message.type == wire.MSG_METRICS_REPLY
        assert message.flags == wire.METRICS_PROMETHEUS
        assert message.body == body


class TestMalformedFrames:
    def test_bad_magic(self):
        with pytest.raises(wire.WireError, match="magic"):
            wire.decode(b"XXXX" + wire.encode_shutdown()[4:])

    def test_short_frame(self):
        with pytest.raises(wire.WireError, match="shorter than a header"):
            wire.decode(b"RPW")

    def test_unknown_type(self):
        with pytest.raises(wire.WireError, match="unknown message type"):
            wire.decode(wire.MAGIC + bytes([250]))

    def test_truncated_body(self):
        frame = wire.encode_query(1, "key", "//a")
        with pytest.raises(wire.WireError, match="truncated"):
            wire.decode(frame[:-2])

    def test_trailing_garbage(self):
        with pytest.raises(wire.WireError, match="trailing"):
            wire.decode(wire.encode_shutdown() + b"\x00")

    def test_truncated_id_array(self):
        frame = wire.encode_result_ids(1, [1, 2, 3])
        with pytest.raises(wire.WireError, match="truncated"):
            wire.decode(frame[:-4])

    def test_unknown_scalar_kind(self):
        frame = bytearray(wire.encode_result_value(1, True))
        frame[9] = ord("Z")  # magic(4) + type(1) + seq(4) → kind byte
        with pytest.raises(wire.WireError, match="unknown scalar kind"):
            wire.decode(bytes(frame))


class TestNetworkFrames:
    def test_hello_round_trip(self):
        message = wire.decode(wire.encode_hello(4321, banner="repro-xpath"))
        assert message.type == wire.MSG_HELLO
        assert message.version == wire.PROTOCOL_VERSION
        assert (message.pid, message.banner) == (4321, "repro-xpath")

    def test_hello_custom_version(self):
        assert wire.decode(wire.encode_hello(1, version=7)).version == 7

    def test_overloaded_round_trip(self):
        message = wire.decode(wire.encode_overloaded(9, 128, 128))
        assert message.type == wire.MSG_OVERLOADED
        assert (message.seq, message.inflight, message.capacity) == (9, 128, 128)

    def test_stream_framing_round_trip(self):
        frame = wire.encode_query(1, "k", "//a")
        stream = wire.encode_framed(frame)
        assert wire.framed_length(stream[:4]) == len(frame)
        assert stream[4:] == frame

    def test_stream_framing_rejects_oversized_frames(self):
        with pytest.raises(wire.WireError, match="MAX_FRAME"):
            wire.framed_length((wire.MAX_FRAME + 1).to_bytes(4, "little"))

    def test_encode_framed_rejects_oversized_frames(self):
        class _Huge(bytes):
            def __len__(self):  # avoid materialising 16 MiB in the test
                return wire.MAX_FRAME + 1

        with pytest.raises(wire.WireError, match="MAX_FRAME"):
            wire.encode_framed(_Huge())

    def test_stream_header_must_be_four_bytes(self):
        with pytest.raises(wire.WireError, match="expected 4"):
            wire.framed_length(b"\x01\x00")


# -- hypothesis fuzzing -------------------------------------------------------
#
# The decoder faces bytes from process and network boundaries; the
# property it must uphold is: any input either decodes to a Message or
# raises WireError — never another exception type, never a hang, and
# valid frames never mis-decode (the round-trip property).

_seqs = st.integers(min_value=0, max_value=2**32 - 1)
_texts = st.text(max_size=40)
_int32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)
_scalars = st.one_of(
    st.booleans(),
    st.floats(allow_nan=False),
    st.text(max_size=60),
)


@st.composite
def valid_frames(draw):
    """One well-formed frame of any message type, fields randomised."""
    kind = draw(st.sampled_from([
        "query", "result_ids", "result_value", "error", "warm", "ready",
        "stats", "stats_reply", "shutdown", "ping", "pong", "drain",
        "drained", "hello", "overloaded", "trace", "metrics",
        "metrics_reply",
    ]))
    if kind == "query":
        return wire.encode_query(
            draw(_seqs), draw(_texts), draw(_texts),
            ids_only=draw(st.booleans()), trace=draw(st.booleans()),
        )
    if kind == "result_ids":
        return wire.encode_result_ids(
            draw(_seqs), draw(st.lists(_int32s, max_size=50))
        )
    if kind == "result_value":
        return wire.encode_result_value(draw(_seqs), draw(_scalars))
    if kind == "error":
        return wire.encode_error(draw(_seqs), draw(_texts), draw(_texts))
    if kind == "warm":
        return wire.encode_warm(draw(st.lists(_texts, max_size=8)))
    if kind == "ready":
        return wire.encode_ready(draw(_seqs), draw(_seqs))
    if kind == "stats":
        return wire.encode_stats_request()
    if kind == "stats_reply":
        return wire.encode_stats_reply(
            draw(st.dictionaries(st.text(max_size=10), _seqs, max_size=5))
        )
    if kind == "shutdown":
        return wire.encode_shutdown()
    if kind == "ping":
        return wire.encode_ping(draw(_seqs))
    if kind == "pong":
        return wire.encode_pong(draw(_seqs), draw(_seqs))
    if kind == "drain":
        return wire.encode_drain()
    if kind == "drained":
        return wire.encode_drained(draw(_seqs), draw(_seqs))
    if kind == "hello":
        return wire.encode_hello(draw(_seqs), banner=draw(_texts))
    if kind == "trace":
        return wire.encode_trace(
            draw(_seqs),
            {"tier": draw(_texts), "spans": [], "children": []},
        )
    if kind == "metrics":
        return wire.encode_metrics_request(
            draw(st.sampled_from([wire.METRICS_JSON, wire.METRICS_PROMETHEUS]))
        )
    if kind == "metrics_reply":
        return wire.encode_metrics_reply(wire.METRICS_JSON, draw(_texts))
    return wire.encode_overloaded(draw(_seqs), draw(_seqs), draw(_seqs))


def _decode_is_total(data: bytes) -> None:
    """decode() either returns a Message or raises WireError — nothing else."""
    try:
        message = wire.decode(data)
    except wire.WireError:
        return
    assert isinstance(message, wire.Message)


class TestDecoderFuzz:
    @given(valid_frames())
    @settings(max_examples=200, deadline=None)
    def test_valid_frames_decode(self, frame):
        message = wire.decode(frame)
        assert isinstance(message, wire.Message)

    @given(
        valid_frames(),
        st.lists(
            st.tuples(st.integers(min_value=0), st.integers(0, 255)),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=300, deadline=None)
    def test_byte_mutations_never_crash(self, frame, mutations):
        corrupted = bytearray(frame)
        for offset, value in mutations:
            corrupted[offset % len(corrupted)] = value
        _decode_is_total(bytes(corrupted))

    @given(valid_frames(), st.data())
    @settings(max_examples=200, deadline=None)
    def test_truncations_raise_wire_errors(self, frame, data):
        cut = data.draw(st.integers(0, len(frame) - 1), label="cut")
        with pytest.raises(wire.WireError):
            wire.decode(frame[:cut])

    @given(valid_frames(), st.binary(min_size=1, max_size=16))
    @settings(max_examples=200, deadline=None)
    def test_appended_garbage_raises_wire_errors(self, frame, garbage):
        # Empty-body frames followed by garbage must not silently decode;
        # body-carrying frames must account for every byte (done()).
        with pytest.raises(wire.WireError):
            wire.decode(frame + garbage)

    @given(st.binary(max_size=200))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_bytes_never_crash(self, data):
        _decode_is_total(data)

    @given(st.binary(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_bytes_with_magic_never_crash(self, data):
        _decode_is_total(wire.MAGIC + data)

    @given(st.binary(min_size=4, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_stream_header_fuzz(self, header):
        try:
            length = wire.framed_length(header)
        except wire.WireError:
            return
        assert 0 <= length <= wire.MAX_FRAME


class TestEncodeDecodeRoundTripFuzz:
    """Valid frames never mis-decode: every field survives the wire."""

    @given(_seqs, _texts, _texts, st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_query_round_trip(self, seq, key, query, ids_only):
        message = wire.decode(wire.encode_query(seq, key, query, ids_only))
        assert (message.seq, message.key, message.query, message.ids_only) == (
            seq, key, query, ids_only
        )

    @given(_seqs, st.lists(_int32s, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_result_ids_round_trip(self, seq, ids):
        message = wire.decode(wire.encode_result_ids(seq, ids))
        assert (message.seq, message.ids) == (seq, ids)

    @given(_seqs, _scalars)
    @settings(max_examples=100, deadline=None)
    def test_result_value_round_trip(self, seq, value):
        message = wire.decode(wire.encode_result_value(seq, value))
        assert message.seq == seq
        if isinstance(value, bool):
            assert message.value is value
        else:
            assert message.value == value

    @given(_seqs, _texts)
    @settings(max_examples=100, deadline=None)
    def test_hello_round_trip(self, pid, banner):
        message = wire.decode(wire.encode_hello(pid, banner=banner))
        assert (message.pid, message.banner) == (pid, banner)

    @given(_seqs, _seqs, _seqs)
    @settings(max_examples=100, deadline=None)
    def test_overloaded_round_trip(self, seq, inflight, capacity):
        message = wire.decode(wire.encode_overloaded(seq, inflight, capacity))
        assert (message.seq, message.inflight, message.capacity) == (
            seq, inflight, capacity
        )
