"""Unit tests for the id-native wire format (framing, round-trips, errors)."""

import pytest

from repro.serving import wire


class TestQueryFrames:
    def test_round_trip(self):
        frame = wire.encode_query(42, "catalogue", "//book[child::title]")
        message = wire.decode(frame)
        assert message.type == wire.MSG_QUERY
        assert (message.seq, message.key, message.query) == (
            42, "catalogue", "//book[child::title]"
        )
        assert not message.ids_only

    def test_ids_flag(self):
        message = wire.decode(wire.encode_query(0, "k", "//a", ids_only=True))
        assert message.ids_only
        assert message.flags & wire.FLAG_IDS

    def test_unicode_key_and_query(self):
        frame = wire.encode_query(1, "документы", '//a[@x="émü"]')
        message = wire.decode(frame)
        assert message.key == "документы"
        assert message.query == '//a[@x="émü"]'


class TestResultFrames:
    @pytest.mark.parametrize(
        "ids", [[], [0], [2, 3, 11], list(range(10_000))]
    )
    def test_id_arrays_round_trip(self, ids):
        message = wire.decode(wire.encode_result_ids(7, ids))
        assert message.type == wire.MSG_RESULT_IDS
        assert message.seq == 7
        assert message.ids == ids

    def test_id_array_wire_size_is_four_bytes_per_id(self):
        empty = wire.encode_result_ids(0, [])
        thousand = wire.encode_result_ids(0, list(range(1000)))
        assert len(thousand) - len(empty) == 4 * 1000

    @pytest.mark.parametrize("value", [2.0, -1.5, float("inf"), 0.0])
    def test_float_values(self, value):
        assert wire.decode(wire.encode_result_value(3, value)).value == value

    def test_float_nan(self):
        decoded = wire.decode(wire.encode_result_value(3, float("nan"))).value
        assert decoded != decoded  # NaN round-trips as NaN

    @pytest.mark.parametrize("value", [True, False])
    def test_bool_values_stay_bool(self, value):
        decoded = wire.decode(wire.encode_result_value(1, value)).value
        assert decoded is value

    def test_string_values(self):
        decoded = wire.decode(wire.encode_result_value(1, "héllo ")).value
        assert decoded == "héllo "

    def test_int_scalars_become_floats(self):
        # XPath 1.0 numbers are doubles; the wire keeps that convention.
        decoded = wire.decode(wire.encode_result_value(1, 7)).value
        assert decoded == 7.0 and isinstance(decoded, float)

    def test_unencodable_value_raises(self):
        with pytest.raises(wire.WireError, match="cannot encode"):
            wire.encode_result_value(1, object())


class TestControlFrames:
    def test_error_round_trip(self):
        frame = wire.encode_error(9, "XPathSyntaxError", "unexpected token")
        message = wire.decode(frame)
        assert message.type == wire.MSG_ERROR
        assert message.seq == 9
        assert message.error == ("XPathSyntaxError", "unexpected token")

    def test_warm_and_ready(self):
        message = wire.decode(wire.encode_warm(["a", "b", "c"]))
        assert message.type == wire.MSG_WARM
        assert message.keys == ("a", "b", "c")
        ready = wire.decode(wire.encode_ready(3, 1234))
        assert (ready.hydrated, ready.pid) == (3, 1234)

    def test_warm_empty(self):
        assert wire.decode(wire.encode_warm([])).keys == ()

    def test_stats_round_trip(self):
        assert wire.decode(wire.encode_stats_request()).type == wire.MSG_STATS
        payload = {"worker": 0, "dispatch": {"core": 3}}
        message = wire.decode(wire.encode_stats_reply(payload))
        assert message.payload == payload

    def test_shutdown(self):
        assert wire.decode(wire.encode_shutdown()).type == wire.MSG_SHUTDOWN


class TestMalformedFrames:
    def test_bad_magic(self):
        with pytest.raises(wire.WireError, match="magic"):
            wire.decode(b"XXXX" + wire.encode_shutdown()[4:])

    def test_short_frame(self):
        with pytest.raises(wire.WireError, match="shorter than a header"):
            wire.decode(b"RPW")

    def test_unknown_type(self):
        with pytest.raises(wire.WireError, match="unknown message type"):
            wire.decode(wire.MAGIC + bytes([250]))

    def test_truncated_body(self):
        frame = wire.encode_query(1, "key", "//a")
        with pytest.raises(wire.WireError, match="truncated"):
            wire.decode(frame[:-2])

    def test_trailing_garbage(self):
        with pytest.raises(wire.WireError, match="trailing"):
            wire.decode(wire.encode_shutdown() + b"\x00")

    def test_truncated_id_array(self):
        frame = wire.encode_result_ids(1, [1, 2, 3])
        with pytest.raises(wire.WireError, match="truncated"):
            wire.decode(frame[:-4])

    def test_unknown_scalar_kind(self):
        frame = bytearray(wire.encode_result_value(1, True))
        frame[9] = ord("Z")  # magic(4) + type(1) + seq(4) → kind byte
        with pytest.raises(wire.WireError, match="unknown scalar kind"):
            wire.decode(bytes(frame))
