"""Fault-injection harness for the sharded serving supervision tests.

Workers arm an optional fault from the ``REPRO_SERVING_FAULT``
environment variable at startup (see the "Fault injection" section of
:mod:`repro.serving.worker` for the spec grammar).  The environment is
the one channel that reaches *every* worker process this test will ever
observe — fork children, spawn children, and the workers the supervisor
restarts behind the test's back — so the harness is nothing more than a
context manager that sets the variable around pool construction and use.

Two firing modes:

* ``once=True`` (default) drops a token file next to the test's tmp dir
  and exports it as ``REPRO_SERVING_FAULT_ONCE``: exactly one worker
  process (the first to reach the trigger) consumes the token and dies;
  its restarted successor finds no token and serves normally.  This is
  the *recovery* scenario.
* ``once=False`` re-arms the fault in every (re)started worker: the
  restarted successor dies on cue too, until some budget — restart or
  retry — runs out.  This is the *exhaustion* scenario.
"""

import contextlib
import os
import uuid

from repro.serving.worker import FAULT_ENV, FAULT_ONCE_ENV


@contextlib.contextmanager
def worker_fault(action, trigger, n=1, once=True, tmp_path="/tmp"):
    """Arm ``<action>:<trigger>[:<n>]`` for workers started inside the block.

    ``action`` is ``exit`` / ``midframe`` / ``hang``; ``trigger`` is
    ``query`` / ``warm`` / ``close``; the fault fires on the ``n``-th
    trigger frame a worker process reads.  Only processes *started* while
    the block is active inherit the fault (the environment is captured at
    process start), so create the pool inside the block.
    """
    token = None
    saved = {name: os.environ.get(name) for name in (FAULT_ENV, FAULT_ONCE_ENV)}
    os.environ[FAULT_ENV] = f"{action}:{trigger}:{n}"
    if once:
        token = os.path.join(str(tmp_path), f"fault-token-{uuid.uuid4().hex}")
        with open(token, "w"):
            pass
        os.environ[FAULT_ONCE_ENV] = token
    else:
        os.environ.pop(FAULT_ONCE_ENV, None)
    try:
        yield token
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        if token is not None:
            with contextlib.suppress(OSError):
                os.unlink(token)
