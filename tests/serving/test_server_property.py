"""Property: sharded-over-TCP ≡ ``evaluate_many_ids``, under concurrency.

The network tier adds stream framing, connection multiplexing, the
admission window and a dispatcher thread on top of the pool — none of
which may change a single answer.  Random documents are snapshotted into
the server's store, then mixed batches (id queries, scalars, and
always-failing requests) are driven through several concurrent TCP
connections at once; every id array must equal the in-process
:func:`~repro.planner.evaluate_many_ids`, every scalar the in-process
engine's value, and every failure must come back as its original typed
exception — request isolation means one batch's errors never poison its
neighbours on the same multiplexed pool.
"""

import asyncio

import pytest
from hypothesis import given, settings

from repro.errors import XPathEvaluationError, XPathSyntaxError
from repro.evaluation import evaluate
from repro.planner import evaluate_many_ids
from repro.serving import AsyncServingClient, ShardedPool, XPathServer
from repro.store import CorpusStore
from repro.xpath.ast import FunctionCall

from tests.properties.strategies import core_xpath_queries, documents

CONNECTIONS = 4
REPEATS = 3  # pipeline depth per connection


@pytest.fixture(scope="module")
def net(tmp_path_factory):
    """One store + pool + TCP server shared by every hypothesis example."""
    store = CorpusStore(tmp_path_factory.mktemp("server-property-store"))
    with ShardedPool(store, workers=2, warm=False) as pool:
        server = XPathServer(pool)
        with server as (host, port):
            yield store, host, port


def _drive(host, port, requests, connections=CONNECTIONS):
    """Evaluate ``requests`` on N concurrent connections; list of batches."""

    async def main():
        clients = await asyncio.gather(*[
            AsyncServingClient.connect(host, port) for _ in range(connections)
        ])
        try:
            return await asyncio.gather(*[
                client.evaluate_batch(requests, return_errors=True)
                for client in clients
            ])
        finally:
            await asyncio.gather(*[client.aclose() for client in clients])

    return asyncio.run(main())


class TestTcpAgreesWithInProcess:
    @given(documents(max_nodes=30), core_xpath_queries(allow_negation=True))
    @settings(max_examples=20, deadline=None)
    def test_mixed_batches_agree_across_concurrent_connections(
        self, net, document, query
    ):
        store, host, port = net
        key = store.put(document).key  # content-hash key, idempotent
        count = FunctionCall("count", (query,))
        expected_ids = evaluate_many_ids(document, [query])[0]
        expected_count = evaluate(count, document, engine="auto")

        requests = [
            (query, key),           # node-set → sorted int32 ids
            (count, key),           # scalar → float64 on the wire
            ("//broken[", key),     # always fails → typed error in its slot
        ] * REPEATS
        for batch in _drive(host, port, requests):
            for index in range(0, len(batch), 3):
                ids_result, count_result, failure = batch[index:index + 3]
                assert ids_result.is_node_set
                assert ids_result.ids == expected_ids
                assert count_result.value == expected_count
                assert isinstance(failure, XPathSyntaxError)

    @given(documents(max_nodes=25), core_xpath_queries(allow_negation=True))
    @settings(max_examples=10, deadline=None)
    def test_ids_mode_error_contract_crosses_the_network(
        self, net, document, query
    ):
        store, host, port = net
        key = store.put(document).key
        count = FunctionCall("count", (query,))
        requests = [(query, key), (count, key)]

        async def main():
            async with await AsyncServingClient.connect(host, port) as client:
                return await client.evaluate_batch(
                    requests, ids=True, return_errors=True
                )

        node_set, scalar_error = asyncio.run(main())
        assert node_set.ids == evaluate_many_ids(document, [query])[0]
        assert isinstance(scalar_error, XPathEvaluationError)
        assert "not a node-set" in str(scalar_error)
