"""Property: sharded serving ≡ in-process engine ≡ legacy auto dispatch.

The cross-process tier adds sharding, a wire format, per-worker engines
and parent-side rehydration on top of the planner — none of which may
change a single answer.  Random documents are snapshotted into a shared
corpus store (workers hydrate them on demand, exercising cross-process
manifest freshness), then random Core XPath queries must agree across:

* :class:`~repro.serving.ShardedPool` (evaluated in a worker process),
* :meth:`XPathEngine.evaluate` on a store-hydrated document in process,
* the legacy :func:`~repro.evaluation.evaluate` auto path on the
  original in-memory document,

including scalar results, empty node-sets, and the error contract of
``ids=True``.
"""

import pytest
from hypothesis import given, settings

from repro.engine import XPathEngine
from repro.errors import XPathEvaluationError
from repro.evaluation import evaluate
from repro.planner import evaluate_many_ids
from repro.serving import ShardedPool
from repro.store import CorpusStore, StoreKey
from repro.xpath.ast import FunctionCall

from tests.properties.strategies import core_xpath_queries, documents
from tests.serving.faultinject import worker_fault


@pytest.fixture(scope="module")
def harness(tmp_path_factory):
    """One store + worker pool + in-process engine shared by every example."""
    store = CorpusStore(tmp_path_factory.mktemp("property-store"))
    engine = XPathEngine(max_documents=256).attach_store(store)
    with ShardedPool(store, workers=2, warm=False) as pool:
        yield store, pool, engine


class TestShardedAgreesEverywhere:
    @given(documents(max_nodes=30), core_xpath_queries(allow_negation=True))
    @settings(max_examples=40, deadline=None)
    def test_node_sets_agree(self, harness, document, query):
        store, pool, engine = harness
        key = store.put(document).key  # content-hash key, idempotent
        sharded = pool.evaluate(query, key, ids=True)
        in_process = engine.evaluate(query, StoreKey(key), ids=True)
        legacy = evaluate(query, document, engine="auto")
        assert sharded.ids == in_process.ids
        assert sharded.ids == [document.index.id_of(node) for node in legacy]

    @given(documents(max_nodes=25), core_xpath_queries(allow_negation=True))
    @settings(max_examples=20, deadline=None)
    def test_scalars_agree(self, harness, document, query):
        store, pool, engine = harness
        key = store.put(document).key
        count = FunctionCall("count", (query,))
        sharded = pool.evaluate(count, key)
        in_process = engine.evaluate(count, StoreKey(key))
        legacy = evaluate(count, document, engine="auto")
        assert sharded.value == in_process.value == legacy

    @given(documents(max_nodes=25))
    @settings(max_examples=10, deadline=None)
    def test_empty_results_agree(self, harness, document):
        store, pool, engine = harness
        key = store.put(document).key
        query = "//nosuchtag"
        assert pool.evaluate(query, key).ids == []
        assert engine.evaluate(query, StoreKey(key)).ids == []
        assert evaluate(query, document, engine="auto") == []

    @given(documents(max_nodes=20), core_xpath_queries(allow_negation=False))
    @settings(max_examples=10, deadline=None)
    def test_ids_mode_error_contract_agrees(self, harness, document, query):
        store, pool, engine = harness
        key = store.put(document).key
        count = FunctionCall("count", (query,))
        with pytest.raises(XPathEvaluationError, match="not a node-set"):
            pool.evaluate(count, key, ids=True)
        with pytest.raises(XPathEvaluationError, match="not a node-set"):
            engine.evaluate(count, StoreKey(key), ids=True)


@pytest.fixture(scope="module")
def faulty_harness(tmp_path_factory):
    """A pool whose workers crash every 25th query — and keep being revived.

    The fault environment stays armed for the fixture's whole lifetime,
    so the workers the supervisor restarts mid-run inherit the same
    crash-on-cue behaviour; the restart budget is effectively unbounded
    and replay absorbs every death.
    """
    store = CorpusStore(tmp_path_factory.mktemp("faulty-property-store"))
    with worker_fault(
        "exit", "query", n=25, once=False,
        tmp_path=tmp_path_factory.mktemp("fault-tokens"),
    ):
        with ShardedPool(
            store, workers=2, warm=False,
            max_restarts=100_000, max_retries=10,
        ) as pool:
            yield store, pool


class TestShardedAgreesUnderFaultInjection:
    """Supervision must be invisible: crashing pool ≡ ``evaluate_many_ids``."""

    @given(documents(max_nodes=30), core_xpath_queries(allow_negation=True))
    @settings(max_examples=40, deadline=None)
    def test_node_sets_agree_despite_worker_crashes(
        self, faulty_harness, document, query
    ):
        store, pool = faulty_harness
        key = store.put(document).key
        sharded = pool.evaluate(query, key, ids=True)
        assert sharded.ids == evaluate_many_ids(document, [query])[0]

    @given(documents(max_nodes=25), core_xpath_queries(allow_negation=True))
    @settings(max_examples=15, deadline=None)
    def test_scalars_agree_despite_worker_crashes(
        self, faulty_harness, document, query
    ):
        store, pool = faulty_harness
        key = store.put(document).key
        count = FunctionCall("count", (query,))
        assert pool.evaluate(count, key).value == evaluate(
            count, document, engine="auto"
        )
