"""Unit tests for the circuit library (Figure 2), generators and layering (Figure 3)."""

import itertools

import pytest

from repro.circuits import (
    GATE_AND,
    GATE_OR,
    and_chain,
    carry_assignment,
    carry_circuit,
    expected_carry,
    layered_serialization,
    majority3,
    or_of_ands,
    random_assignment,
    random_monotone_circuit,
    random_sac1_circuit,
    render_layering,
)


class TestCarryCircuit:
    def test_structure_matches_figure2(self):
        circuit = carry_circuit()
        assert circuit.num_inputs() == 4
        assert circuit.num_internal() == 5
        assert circuit.output == "G9"
        assert circuit.gates["G9"].kind == GATE_OR
        assert all(circuit.gates[name].kind == GATE_AND for name in ("G5", "G6", "G7", "G8"))
        assert circuit.gates["G5"].inputs == ("G3", "G4")

    def test_all_sixteen_truth_table_rows(self):
        circuit = carry_circuit()
        for a1, a0, b1, b0 in itertools.product([False, True], repeat=4):
            assignment = carry_assignment(a1, a0, b1, b0)
            assert circuit.value(assignment) is expected_carry(a1, a0, b1, b0)

    def test_numbering_matches_paper(self):
        numbering = carry_circuit().numbering()
        assert numbering == {f"G{i}": i for i in range(1, 10)}


class TestSmallLibraryCircuits:
    def test_and_chain(self):
        circuit = and_chain(4)
        assert circuit.value({f"x{i}": True for i in range(4)}) is True
        assert circuit.value({"x0": True, "x1": True, "x2": False, "x3": True}) is False
        assert circuit.depth() == 3

    def test_or_of_ands(self):
        circuit = or_of_ands(2, 2)
        assignment = {"x0_0": True, "x0_1": True, "x1_0": False, "x1_1": True}
        assert circuit.value(assignment) is True
        assignment["x0_1"] = False
        assert circuit.value(assignment) is False

    def test_majority3(self):
        circuit = majority3()
        assert circuit.value({"x": True, "y": True, "z": False}) is True
        assert circuit.value({"x": True, "y": False, "z": False}) is False

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            and_chain(1)
        with pytest.raises(ValueError):
            or_of_ands(0, 2)


class TestGenerators:
    def test_random_monotone_circuit_is_deterministic(self):
        first = random_monotone_circuit(4, 6, seed=5)
        second = random_monotone_circuit(4, 6, seed=5)
        assert first.wires() == second.wires()
        assert [g.kind for g in first.gates.values()] == [g.kind for g in second.gates.values()]

    def test_random_monotone_circuit_numbering_requirement(self):
        circuit = random_monotone_circuit(5, 12, seed=1)
        numbering = circuit.numbering()
        for gate in circuit.gates.values():
            for input_name in gate.inputs:
                assert numbering[input_name] < numbering[gate.name]

    def test_random_assignment_deterministic(self):
        circuit = random_monotone_circuit(6, 4, seed=2)
        assert random_assignment(circuit, seed=3) == random_assignment(circuit, seed=3)
        assert set(random_assignment(circuit, seed=3)) == set(circuit.input_names)

    def test_random_sac1_circuit_is_semi_unbounded(self):
        for seed in range(5):
            circuit = random_sac1_circuit(8, seed=seed)
            assert circuit.is_semi_unbounded()
            assert circuit.depth() >= 1

    def test_random_sac1_depth_parameter(self):
        circuit = random_sac1_circuit(8, depth=5, seed=0)
        assert circuit.depth() <= 5

    def test_generator_parameter_validation(self):
        with pytest.raises(ValueError):
            random_monotone_circuit(0, 3)
        with pytest.raises(ValueError):
            random_sac1_circuit(1)


class TestLayering:
    def test_one_layer_per_internal_gate(self):
        circuit = carry_circuit()
        layers = layered_serialization(circuit)
        assert len(layers) == circuit.num_internal()
        assert [layer.gate_name for layer in layers] == ["G5", "G6", "G7", "G8", "G9"]

    def test_layer_inputs_match_gates(self):
        layers = layered_serialization(carry_circuit())
        assert layers[0].gate_inputs == (3, 4)  # G5 = G3 ∧ G4
        assert layers[4].gate_inputs == (6, 7, 8)  # G9 = G6 ∨ G7 ∨ G8
        assert layers[4].gate_kind == GATE_OR

    def test_dummy_gates_cover_all_earlier_gates(self):
        layers = layered_serialization(carry_circuit())
        assert layers[0].dummy_gates == tuple(range(1, 5))
        assert layers[4].dummy_gates == tuple(range(1, 9))

    def test_render_layering_mentions_every_layer(self):
        text = render_layering(carry_circuit())
        for label in ("L1", "L2", "L3", "L4", "L5", "output gate: G9"):
            assert label in text
