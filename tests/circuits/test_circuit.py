"""Unit tests for the monotone Boolean circuit substrate."""

import pytest

from repro.circuits import (
    GATE_AND,
    GATE_INPUT,
    GATE_OR,
    Circuit,
    Gate,
    circuit_from_spec,
)
from repro.errors import CircuitError


def simple_circuit():
    return circuit_from_spec(
        inputs=["x", "y", "z"],
        gates=[
            ("g1", GATE_AND, ["x", "y"]),
            ("g2", GATE_OR, ["g1", "z"]),
        ],
        output="g2",
    )


class TestGate:
    def test_kind_validation(self):
        with pytest.raises(CircuitError):
            Gate("g", "xor", ("a", "b"))

    def test_input_gates_have_no_inputs(self):
        with pytest.raises(CircuitError):
            Gate("g", GATE_INPUT, ("a",))
        with pytest.raises(CircuitError):
            Gate("g", GATE_AND, ())


class TestCircuitStructure:
    def test_counts_and_names(self):
        circuit = simple_circuit()
        assert circuit.size() == 5
        assert circuit.num_inputs() == 3
        assert circuit.num_internal() == 2
        assert circuit.input_names == ["x", "y", "z"]
        assert circuit.internal_names == ["g1", "g2"]

    def test_numbering_respects_dependencies(self):
        circuit = simple_circuit()
        numbering = circuit.numbering()
        assert sorted(numbering.values()) == [1, 2, 3, 4, 5]
        for gate in circuit.gates.values():
            for input_name in gate.inputs:
                assert numbering[input_name] < numbering[gate.name]

    def test_depth_and_fanin(self):
        circuit = simple_circuit()
        assert circuit.depth() == 2
        assert circuit.max_fanin() == 2
        assert circuit.max_fanin(GATE_AND) == 2
        assert circuit.is_semi_unbounded()

    def test_wide_and_gate_not_semi_unbounded(self):
        circuit = circuit_from_spec(
            inputs=["a", "b", "c"],
            gates=[("g", GATE_AND, ["a", "b", "c"])],
            output="g",
        )
        assert not circuit.is_semi_unbounded()
        assert circuit.is_semi_unbounded(and_fanin_bound=3)

    def test_wires(self):
        assert set(simple_circuit().wires()) == {
            ("x", "g1"),
            ("y", "g1"),
            ("g1", "g2"),
            ("z", "g2"),
        }

    def test_topological_order(self):
        order = simple_circuit().topological_order()
        assert order.index("g1") < order.index("g2")
        assert all(order.index("x") < order.index(name) for name in ("g1", "g2"))


class TestCircuitValidation:
    def test_duplicate_gate_names(self):
        with pytest.raises(CircuitError):
            Circuit([Gate("x", GATE_INPUT), Gate("x", GATE_INPUT)], "x")

    def test_missing_output(self):
        with pytest.raises(CircuitError):
            Circuit([Gate("x", GATE_INPUT)], "y")

    def test_undefined_input_reference(self):
        with pytest.raises(CircuitError):
            Circuit([Gate("g", GATE_AND, ("missing", "also"))], "g")

    def test_cycle_detection(self):
        with pytest.raises(CircuitError):
            Circuit(
                [
                    Gate("a", GATE_AND, ("b",)),
                    Gate("b", GATE_OR, ("a",)),
                ],
                "a",
            )


class TestEvaluation:
    @pytest.mark.parametrize(
        "assignment,expected",
        [
            ({"x": True, "y": True, "z": False}, True),
            ({"x": True, "y": False, "z": False}, False),
            ({"x": False, "y": False, "z": True}, True),
            ({"x": False, "y": False, "z": False}, False),
        ],
    )
    def test_value(self, assignment, expected):
        assert simple_circuit().value(assignment) is expected

    def test_evaluate_returns_all_gate_values(self):
        values = simple_circuit().evaluate({"x": True, "y": True, "z": False})
        assert values == {"x": True, "y": True, "z": False, "g1": True, "g2": True}

    def test_missing_input_value_raises(self):
        with pytest.raises(CircuitError):
            simple_circuit().value({"x": True})

    def test_unbounded_fanin_or(self):
        circuit = circuit_from_spec(
            inputs=[f"x{i}" for i in range(6)],
            gates=[("big", GATE_OR, [f"x{i}" for i in range(6)])],
            output="big",
        )
        assert circuit.value({f"x{i}": i == 5 for i in range(6)}) is True
        assert circuit.value({f"x{i}": False for i in range(6)}) is False
