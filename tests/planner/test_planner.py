"""Unit tests for query planning: engine selection, running, batching."""

import pytest

from repro.errors import XPathEvaluationError
from repro.evaluation import Context, evaluate
from repro.planner import (
    AUTO_ENGINE_CHAIN,
    PlanCache,
    QueryPlan,
    evaluate_many,
    get_plan,
    plan_query,
)
from repro.xmlmodel import parse_xml
from repro.xpath import parse

DOC = parse_xml("<r><a><b/></a><a/><c>5</c></r>")


class TestEngineSelection:
    @pytest.mark.parametrize(
        "query",
        [
            "/descendant::a",
            "//a[child::b]",
            "//a[not(child::b)]",
            "//a | //c",
            "//a[child::b and not(parent::r)]",
        ],
    )
    def test_core_xpath_selects_core(self, query):
        plan = plan_query(query)
        assert plan.engine == "core"
        assert plan.fallbacks == ("cvt", "naive")
        assert "Core XPath" in plan.classification.fragments

    @pytest.mark.parametrize(
        "query",
        [
            "//a[position() = 2]",
            "//c[. = 5]",
            "count(//a)",
            "//a[attribute::id]",
            "string(//c)",
        ],
    )
    def test_richer_queries_select_cvt(self, query):
        plan = plan_query(query)
        assert plan.engine == "cvt"
        assert plan.fallbacks == ("naive",)
        assert "Core XPath" not in plan.classification.fragments

    def test_engine_chain_is_ordered_prefix_of_auto_chain(self):
        for query in ("//a", "count(//a)"):
            chain = plan_query(query).engine_chain
            assert chain == AUTO_ENGINE_CHAIN[AUTO_ENGINE_CHAIN.index(chain[0]) :]

    def test_plan_accepts_parsed_ast(self):
        expr = parse("//a[child::b]")
        plan = plan_query(expr)
        assert plan.engine == "core"
        assert plan.query == expr.unparse()

    def test_explain_mentions_engine_and_fragment(self):
        text = plan_query("//a[not(b)]").explain()
        assert "core" in text
        assert "Core XPath" in text


class TestPlanRun:
    def test_node_set_results_in_document_order(self):
        plan = plan_query("//a[child::b]")
        nodes = plan.run(DOC)
        assert [node.tag for node in nodes] == ["a"]
        assert nodes == evaluate("//a[child::b]", DOC, engine="core")

    def test_scalar_results(self):
        assert plan_query("count(//a)").run(DOC) == 2.0
        assert plan_query("string(//c)").run(DOC) == "5"
        assert plan_query("//c = 5").run(DOC) is True

    def test_run_with_context(self):
        a1 = DOC.elements_with_tag("a")[0]
        assert len(plan_query("child::b").run(DOC, context=Context(a1))) == 1

    def test_run_with_variables(self):
        assert plan_query("$x * 2").run(DOC, variables={"x": 21.0}) == 42.0

    def test_plan_is_document_free(self):
        """One cached plan must serve many documents with no stale state."""
        plan = plan_query("//a[child::b]")
        first = parse_xml("<r><a><b/></a></r>")
        second = parse_xml("<r><a/><a><b/><b/></a></r>")
        assert len(plan.run(first)) == 1
        assert len(plan.run(second)) == 1
        assert plan.run(second)[0].document is second
        # and the original document still answers correctly afterwards
        assert len(plan.run(first)) == 1

    def test_shared_evaluators_are_populated_and_reused(self):
        plan = plan_query("//a[child::b]")
        evaluators = {}
        plan.run(DOC, evaluators=evaluators)
        assert set(evaluators) == {"core"}
        first_instance = evaluators["core"]
        plan.run(DOC, evaluators=evaluators)
        assert evaluators["core"] is first_instance


class TestPlanRunIds:
    def test_core_plan_returns_preorder_ids(self):
        plan = plan_query("//a[child::b]")
        ids = plan.run_ids(DOC)
        assert ids == [DOC.index.id_of(node) for node in plan.run(DOC)]

    def test_non_core_plan_converts_at_boundary(self):
        plan = plan_query("//a[position() = 1]")
        assert plan.engine != "core"
        ids = plan.run_ids(DOC)
        assert DOC.index.ids_to_node_list(ids) == plan.run(DOC)

    def test_scalar_result_rejected(self):
        with pytest.raises(XPathEvaluationError):
            plan_query("count(//a)").run_ids(DOC)

    def test_attribute_results_rejected_with_typed_error(self):
        document = parse_xml('<a id="1"><b x="2"/></a>')
        with pytest.raises(XPathEvaluationError):
            plan_query("//@x").run_ids(document)


class TestEvaluateMany:
    def test_matches_individual_evaluation(self):
        queries = ["//a", "count(//a)", "//a[child::b]", "string(//c)"]
        results = evaluate_many(DOC, queries, cache=PlanCache())
        expected = [evaluate(query, DOC, engine="auto") for query in queries]
        assert results == expected

    def test_builds_shared_index_up_front(self):
        document = parse_xml("<r><a/><a/></r>")
        assert not document.has_index
        evaluate_many(document, ["//a"], cache=PlanCache())
        assert document.has_index

    def test_uses_supplied_cache_even_when_empty(self):
        cache = PlanCache(maxsize=4)
        evaluate_many(DOC, ["//a", "//a"], cache=cache)
        stats = cache.stats()
        assert stats.misses == 1
        assert stats.hits == 1

    def test_empty_query_list(self):
        assert evaluate_many(DOC, [], cache=PlanCache()) == []


class TestAutoEngineThroughApi:
    def test_evaluate_auto_matches_default_engine(self):
        for query in ("//a[child::b]", "count(//a)", "//a[position() = 2]"):
            assert evaluate(query, DOC, engine="auto") == evaluate(query, DOC)

    def test_get_plan_uses_default_cache(self):
        plan_a = get_plan("//a[child::b]")
        plan_b = get_plan("//a[child::b]")
        assert plan_a is plan_b
        assert isinstance(plan_a, QueryPlan)

    def test_make_evaluator_auto_is_planner_backed(self):
        from repro.evaluation import PlannedEvaluator, make_evaluator

        evaluator = make_evaluator(DOC, "auto")
        assert isinstance(evaluator, PlannedEvaluator)
        assert evaluator("//a[child::b]") == evaluate("//a[child::b]", DOC, engine="auto")
