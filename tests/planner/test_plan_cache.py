"""Tests for the LRU plan cache: hits, misses, evictions, reuse."""

import pytest

from repro.planner import PlanCache, clear_plan_cache, default_plan_cache, get_plan
from repro.xmlmodel import parse_xml
from repro.xpath import parse

DOC_A = parse_xml("<r><a><b/></a><a/></r>")
DOC_B = parse_xml("<r><a/><a><b/></a><a><b/></a></r>")


class TestHitMissAccounting:
    def test_first_lookup_is_a_miss_then_hits(self):
        cache = PlanCache(maxsize=4)
        first = cache.plan("//a")
        assert (cache.hits, cache.misses) == (0, 1)
        second = cache.plan("//a")
        assert (cache.hits, cache.misses) == (1, 1)
        assert first is second

    def test_distinct_queries_get_distinct_plans(self):
        cache = PlanCache(maxsize=4)
        plan_a = cache.plan("//a")
        plan_b = cache.plan("//b")
        assert plan_a is not plan_b
        assert cache.misses == 2
        assert len(cache) == 2

    def test_ast_and_string_share_an_entry(self):
        cache = PlanCache(maxsize=4)
        expr = parse("//a")
        from_ast = cache.plan(expr)
        from_text = cache.plan(expr.unparse())
        assert from_ast is from_text
        assert cache.hits == 1

    def test_stats_snapshot_and_hit_rate(self):
        cache = PlanCache(maxsize=4)
        assert cache.stats().hit_rate == 0.0
        cache.plan("//a")
        cache.plan("//a")
        cache.plan("//a")
        stats = cache.stats()
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.size == 1
        assert stats.maxsize == 4
        assert stats.hit_rate == pytest.approx(2 / 3)


class TestEviction:
    def test_lru_eviction_order(self):
        cache = PlanCache(maxsize=2)
        cache.plan("//a")
        cache.plan("//b")
        cache.plan("//c")  # evicts //a, the least recently used
        assert cache.evictions == 1
        assert "//a" not in cache
        assert "//b" in cache
        assert "//c" in cache

    def test_hit_refreshes_recency(self):
        cache = PlanCache(maxsize=2)
        cache.plan("//a")
        cache.plan("//b")
        cache.plan("//a")  # refresh //a; //b is now LRU
        cache.plan("//c")
        assert "//a" in cache
        assert "//b" not in cache

    def test_evicted_plan_is_recompiled_on_next_lookup(self):
        cache = PlanCache(maxsize=1)
        first = cache.plan("//a")
        cache.plan("//b")
        again = cache.plan("//a")
        assert again is not first
        assert again.query == first.query
        assert again.engine == first.engine
        assert cache.evictions == 2

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


class TestClearAndReuse:
    def test_clear_resets_everything(self):
        cache = PlanCache(maxsize=4)
        cache.plan("//a")
        cache.plan("//a")
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses, cache.evictions) == (0, 0, 0)

    def test_cached_plan_reruns_correctly_on_a_second_document(self):
        """A plan compiled (and cached) against one document must produce
        fresh, correct results on any other document — no stale state."""
        cache = PlanCache(maxsize=4)
        plan = cache.plan("//a[child::b]")
        assert len(plan.run(DOC_A)) == 1
        cached = cache.plan("//a[child::b]")
        assert cached is plan
        result_b = cached.run(DOC_B)
        assert len(result_b) == 2
        assert all(node.document is DOC_B for node in result_b)
        # run the first document again after the second: still correct
        result_a = cached.run(DOC_A)
        assert len(result_a) == 1
        assert result_a[0].document is DOC_A

    def test_default_cache_is_shared_and_clearable(self):
        clear_plan_cache()
        baseline = default_plan_cache().stats().misses
        get_plan("//a[child::b]")
        get_plan("//a[child::b]")
        stats = default_plan_cache().stats()
        assert stats.misses == baseline + 1
        assert stats.hits >= 1
        clear_plan_cache()
        assert len(default_plan_cache()) == 0
