"""Unit tests for the directed-graph substrate and reachability."""

import pytest

from repro.errors import ReproError
from repro.graphs import (
    DiGraph,
    FIGURE5_TRANSPOSED_MATRIX,
    cycle_graph,
    figure5_graph,
    from_adjacency_matrix,
    is_reachable,
    layered_dag,
    path_graph,
    random_digraph,
    reachable_set,
    reachable_within,
    shortest_path_length,
)


class TestDiGraph:
    def test_add_edge_and_successors(self):
        graph = DiGraph(3, [(0, 1), (1, 2)])
        assert graph.successors(0) == {1}
        assert graph.num_edges() == 2
        graph.add_edge(0, 1)  # idempotent
        assert graph.num_edges() == 2

    def test_vertex_range_checked(self):
        graph = DiGraph(2)
        with pytest.raises(ReproError):
            graph.add_edge(0, 5)
        with pytest.raises(ReproError):
            graph.successors(-1)
        with pytest.raises(ReproError):
            DiGraph(0)

    def test_adjacency_matrix_and_transpose(self):
        graph = DiGraph(3, [(0, 1), (2, 0)])
        assert graph.adjacency_matrix() == [[0, 1, 0], [0, 0, 0], [1, 0, 0]]
        assert graph.adjacency_matrix(transposed=True) == [[0, 0, 1], [1, 0, 0], [0, 0, 0]]

    def test_from_adjacency_matrix_roundtrip(self):
        matrix = [[0, 1], [1, 0]]
        graph = from_adjacency_matrix(matrix)
        assert graph.adjacency_matrix() == matrix
        transposed = from_adjacency_matrix(matrix, transposed=True)
        assert transposed.adjacency_matrix(transposed=True) == matrix

    def test_from_adjacency_matrix_requires_square(self):
        with pytest.raises(ReproError):
            from_adjacency_matrix([[0, 1]])

    def test_add_self_loops_copies(self):
        graph = DiGraph(2, [(0, 1)])
        looped = graph.add_self_loops()
        assert looped.has_edge(0, 0) and looped.has_edge(1, 1)
        assert not graph.has_edge(0, 0)

    def test_edges_sorted(self):
        graph = DiGraph(3, [(2, 1), (0, 2), (0, 1)])
        assert graph.edges() == [(0, 1), (0, 2), (2, 1)]


class TestReachability:
    def test_reachable_set_includes_source(self):
        graph = path_graph(4)
        assert reachable_set(graph, 0) == {0, 1, 2, 3}
        assert reachable_set(graph, 2) == {2, 3}

    def test_is_reachable(self):
        graph = path_graph(4)
        assert is_reachable(graph, 0, 3)
        assert not is_reachable(graph, 3, 0)
        assert is_reachable(graph, 2, 2)

    def test_reachable_within_counts_steps(self):
        graph = path_graph(5)
        assert reachable_within(graph, 0, 3, 3)
        assert not reachable_within(graph, 0, 3, 2)
        assert reachable_within(graph, 0, 0, 0)

    def test_shortest_path_length(self):
        graph = cycle_graph(5)
        assert shortest_path_length(graph, 0, 3) == 3
        assert shortest_path_length(graph, 0, 0) == 0
        no_path = DiGraph(2, [])
        assert shortest_path_length(no_path, 0, 1) is None

    def test_cycle_reaches_everything(self):
        graph = cycle_graph(6)
        assert reachable_set(graph, 3) == set(range(6))


class TestGenerators:
    def test_figure5_graph_matches_matrix(self):
        graph = figure5_graph()
        assert graph.num_vertices == 4
        assert graph.adjacency_matrix(transposed=True) == [
            list(row) for row in FIGURE5_TRANSPOSED_MATRIX
        ]

    def test_random_digraph_deterministic(self):
        assert random_digraph(6, 0.3, seed=1).edges() == random_digraph(6, 0.3, seed=1).edges()
        assert random_digraph(6, 0.3, seed=1).edges() != random_digraph(6, 0.3, seed=2).edges()

    def test_random_digraph_no_self_loops(self):
        graph = random_digraph(8, 0.5, seed=4)
        assert all(source != target for source, target in graph.edges())

    def test_layered_dag_edges_go_forward(self):
        graph = layered_dag(3, 2, seed=0, edge_probability=1.0)
        for source, target in graph.edges():
            assert target // 2 == source // 2 + 1

    def test_path_graph_shape(self):
        graph = path_graph(4)
        assert graph.edges() == [(0, 1), (1, 2), (2, 3)]
