"""Unit tests for the per-query trace span trees."""

from repro.telemetry import Trace, maybe_span


class TestTrace:
    def test_span_contextmanager_records_offset_and_duration(self):
        trace = Trace("engine")
        with trace.span("plan"):
            pass
        with trace.span("eval", engine="core"):
            pass
        assert [span.name for span in trace.spans] == ["plan", "eval"]
        plan, eval_span = trace.spans
        assert plan.offset >= 0.0 and plan.duration >= 0.0
        assert eval_span.offset >= plan.offset
        assert eval_span.meta == {"engine": "core"}

    def test_span_records_even_when_the_body_raises(self):
        trace = Trace("engine")
        try:
            with trace.span("eval"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [span.name for span in trace.spans] == ["eval"]

    def test_add_span_with_external_timestamps(self):
        trace = Trace("pool")
        span = trace.add_span("dispatch", offset=0.25, duration=0.5, worker=1)
        assert (span.offset, span.duration) == (0.25, 0.5)
        assert span.meta == {"worker": 1}
        marker = trace.add_span("decode")  # offset defaults to "now"
        assert marker.offset >= 0.0 and marker.duration == 0.0

    def test_named_spans_flatten_children_with_tier_prefixes(self):
        pool = Trace("pool")
        pool.add_span("dispatch", offset=0.0, duration=1.0)
        worker = Trace("worker")
        worker.add_span("worker-eval", offset=0.0, duration=0.5)
        pool.add_child(worker)
        assert [name for name, _ in pool.named_spans()] == [
            "pool.dispatch", "worker.worker-eval",
        ]

    def test_duration_is_the_latest_end_across_the_tree(self):
        pool = Trace("pool")
        pool.add_span("dispatch", offset=0.0, duration=1.0)
        worker = Trace("worker")
        worker.add_span("worker-eval", offset=0.5, duration=2.0)
        pool.add_child(worker)
        assert pool.duration == 2.5

    def test_dict_round_trip_preserves_the_tree(self):
        pool = Trace("pool")
        pool.add_span("dispatch", offset=0.1, duration=0.2, worker=0)
        worker = Trace("worker")
        worker.add_span("worker-eval", offset=0.0, duration=0.15)
        pool.add_child(worker)
        restored = Trace.from_dict(pool.to_dict())
        assert restored.to_dict() == pool.to_dict()
        assert [name for name, _ in restored.named_spans()] == [
            "pool.dispatch", "worker.worker-eval",
        ]

    def test_describe_renders_every_tier(self):
        pool = Trace("pool")
        pool.add_span("dispatch", offset=0.0, duration=0.001)
        pool.add_child(Trace("worker"))
        text = pool.describe()
        assert "pool [" in text
        assert "dispatch" in text
        assert "worker [" in text


class TestMaybeSpan:
    def test_none_trace_is_a_free_no_op(self):
        with maybe_span(None, "eval"):
            pass  # nothing to assert beyond "no crash, no trace needed"

    def test_real_trace_records(self):
        trace = Trace("engine")
        with maybe_span(trace, "eval", engine="core"):
            pass
        assert [span.name for span in trace.spans] == ["eval"]
