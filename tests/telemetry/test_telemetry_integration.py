"""Telemetry across the tiers: wall time, spans, exposition, invariance.

Three things are pinned here:

* every :class:`~repro.engine.QueryResult` carries a stamped
  ``wall_time``, traced or not (the regression that motivated it:
  untraced pool results used to report 0.0);
* turning tracing on changes **no** answer, at every tier — in-process
  engine, sharded pool, and the TCP server (the differential test);
* the acceptance shape of a traced TCP query: one trace, at least six
  named spans spanning client → server → pool → worker → engine, also
  retrievable from the server's trace ring buffer via the JSON shim.
"""

import json

import pytest

from repro.engine import XPathEngine
from repro.serving import ShardedPool, XPathServer
from repro.serving.client import ServingClient, json_roundtrip
from repro.store import CorpusStore
from repro.xmlmodel import parse_xml

DOCS = {
    "letters": "<a><b/><b><c/></b><d>text</d></a>",
    "deep": "<r><x><y><z/></y></x><x><y/></x></r>",
}

QUERIES = [
    "//b",
    "//b[child::c]",
    "count(//b)",
    "/descendant::x/child::y",
    "name(/*)",
]


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    root = tmp_path_factory.mktemp("telemetry-store")
    store = CorpusStore(root)
    for key, xml in DOCS.items():
        store.put(xml, key=key)
    return store


@pytest.fixture(scope="module")
def pool(store):
    with ShardedPool(store, workers=2) as pool:
        yield pool


@pytest.fixture(scope="module")
def server(pool):
    server = XPathServer(pool, idle_timeout=None)
    with server as address:
        yield server, address


def _key_for(query):
    return "deep" if "x" in query or "/*" in query else "letters"


def _normalise(result):
    return result.ids if result.is_node_set else result.value


class TestWallTimeIsAlwaysStamped:
    def test_engine_results_untraced(self):
        engine = XPathEngine()
        doc = engine.add(DOCS["letters"])
        result = engine.evaluate("//b", doc)
        assert result.trace is None
        assert result.wall_time > 0.0

    def test_engine_batch_results(self):
        engine = XPathEngine()
        doc = engine.add(DOCS["letters"])
        for result in engine.evaluate_batch([("//b", doc), ("count(//b)", doc)]):
            assert result.wall_time > 0.0

    def test_pool_results_untraced(self, pool):
        result = pool.evaluate("//b", "letters")
        assert result.trace is None
        assert result.wall_time > 0.0


class TestTracingChangesNoAnswers:
    def test_engine_differential(self):
        engine = XPathEngine()
        handles = {key: engine.add(xml) for key, xml in DOCS.items()}
        for query in QUERIES:
            doc = handles[_key_for(query)]
            plain = engine.evaluate(query, doc)
            traced = engine.evaluate(query, doc, trace=True)
            assert _normalise(plain) == _normalise(traced), query
            assert traced.trace is not None

    def test_sharded_differential(self, pool):
        for query in QUERIES:
            key = _key_for(query)
            plain = pool.evaluate(query, key)
            traced = pool.evaluate(query, key, trace=True)
            assert _normalise(plain) == _normalise(traced), query
            assert traced.trace is not None

    def test_tcp_differential(self, server):
        _, (host, port) = server
        with ServingClient(host, port) as client:
            for query in QUERIES:
                key = _key_for(query)
                plain = client.evaluate(query, key)
                traced = client.evaluate(query, key, trace=True)
                assert _normalise(plain) == _normalise(traced), query
                assert traced.trace is not None

    def test_all_three_tiers_agree(self, pool, server):
        engine = XPathEngine()
        handles = {key: engine.add(xml) for key, xml in DOCS.items()}
        _, (host, port) = server
        with ServingClient(host, port) as client:
            for query in QUERIES:
                key = _key_for(query)
                local = engine.evaluate(query, handles[key], trace=True)
                sharded = pool.evaluate(query, key, trace=True)
                remote = client.evaluate(query, key, trace=True)
                assert _normalise(local) == _normalise(sharded), query
                assert _normalise(local) == _normalise(remote), query


class TestTracedTcpQueryAcceptance:
    def test_trace_spans_cover_every_tier(self, server):
        _, (host, port) = server
        with ServingClient(host, port) as client:
            result = client.evaluate("//b[child::c]", "letters", trace=True)
        names = [name for name, _ in result.trace.named_spans()]
        assert len(names) >= 6, names
        tiers = {name.split(".", 1)[0] for name in names}
        assert {"client", "server", "pool", "worker", "engine"} <= tiers
        assert "client.request" in names
        assert "pool.dispatch" in names
        assert "worker.worker-eval" in names

    def test_trace_ring_buffer_via_json_shim(self, server):
        _, (host, port) = server
        with ServingClient(host, port) as client:
            client.evaluate("//b", "letters", trace=True)
        (reply,) = json_roundtrip(host, port, [{"op": "trace"}])
        assert reply["traces"], "ring buffer is empty after a traced query"
        tiers = {trace["tier"] for trace in reply["traces"]}
        assert "server" in tiers

    def test_json_shim_traced_query_carries_the_tree(self, server):
        _, (host, port) = server
        (reply,) = json_roundtrip(
            host, port,
            [{"query": "//b", "key": "letters", "trace": True}],
        )
        assert "error" not in reply and reply["ids"]
        names = []

        def walk(tree):
            for span in tree["spans"]:
                names.append(f"{tree['tier']}.{span['name']}")
            for child in tree.get("children", []):
                walk(child)

        walk(reply["trace"])
        assert len(names) >= 5, names


class TestMetricsExposition:
    def test_prometheus_carries_every_tier(self, server):
        server_obj, (host, port) = server
        with ServingClient(host, port) as client:
            client.evaluate("//b", "letters")
            body = client.server_metrics("prometheus")
        assert "repro_server_requests_total" in body
        assert "repro_pool_requests_total" in body
        # engine-level counters surface through the merged worker stats
        assert "repro_pool_worker_plan_cache_total" in body
        for line in body.splitlines():
            if line.startswith("#") or not line:
                continue
            name_part, _, value_part = line.rpartition(" ")
            assert name_part, line
            float(value_part)

    def test_json_shim_metrics_op(self, server):
        _, (host, port) = server
        (reply,) = json_roundtrip(host, port, [{"op": "metrics"}])
        names = {family["name"] for family in reply["metrics"]["families"]}
        assert "repro_server_requests_total" in names
        assert "repro_pool_requests_total" in names

    def test_json_shim_metrics_op_prometheus_format(self, server):
        _, (host, port) = server
        (reply,) = json_roundtrip(
            host, port, [{"op": "metrics", "format": "prometheus"}]
        )
        assert "# TYPE repro_server_requests_total counter" in reply["metrics"]

    def test_stats_view_matches_registry(self, server):
        server_obj, (host, port) = server
        with ServingClient(host, port) as client:
            before = client.server_stats()["server"]["served"]
            client.evaluate("//b", "letters")
            after = client.server_stats()["server"]["served"]
        assert after == before + 1


class TestEngineSlowLog:
    def test_threshold_zero_records_every_query(self):
        engine = XPathEngine(slow_query_threshold=0.0)
        doc = engine.add(DOCS["letters"])
        engine.evaluate("//b", doc)
        entries = engine.slow_log.entries()
        assert entries and entries[-1]["query"] == "//b"
        assert entries[-1]["wall_time"] > 0.0

    def test_default_threshold_skips_fast_queries(self):
        engine = XPathEngine()
        doc = engine.add(DOCS["letters"])
        engine.evaluate("//b", doc)
        assert len(engine.slow_log) == 0
