"""Unit and property tests for the metrics primitives.

The load-bearing promise is the sharding one: per-thread counter and
histogram shards, merged on read, must agree exactly with what a single
thread would have counted — the Hypothesis group below drives random
increment schedules across real threads and pins the equivalence.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SlowQueryLog,
    render_json,
    render_prometheus,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c_total")
        assert counter.value() == 0
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5

    def test_shards_survive_thread_exit(self):
        counter = Counter("c_total")

        def work():
            counter.inc(3)

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        counter.inc()
        assert counter.value() == 4


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc()
        gauge.dec(4)
        assert gauge.value() == 7


class TestHistogram:
    def test_rejects_unsorted_or_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(0.5, 0.1))

    def test_observations_land_in_cumulative_buckets(self):
        histogram = Histogram("h_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)  # overflows into +Inf
        merged = histogram.merged()
        assert merged.count == 3
        assert merged.total == pytest.approx(5.55)
        assert merged.cumulative() == [(0.1, 1), (1.0, 2), ("+Inf", 3)]

    def test_boundary_value_counts_in_its_bucket(self):
        histogram = Histogram("h_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.1)
        assert histogram.merged().cumulative()[0] == (0.1, 1)


class TestRegistry:
    def test_get_or_create_returns_the_same_child(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help")
        second = registry.counter("c_total")
        assert first is second

    def test_kind_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("c_total")
        with pytest.raises(ValueError):
            registry.gauge("c_total")

    def test_label_set_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels=("engine",))
        with pytest.raises(ValueError):
            registry.counter("c_total")

    def test_labelled_children_are_distinct_and_cached(self):
        registry = MetricsRegistry()
        family = registry.counter("dispatch_total", labels=("engine",))
        family.labels(engine="core").inc()
        family.labels(engine="cvt").inc(2)
        assert family.labels(engine="core").value() == 1
        assert family.labels(engine="cvt").value() == 2
        with pytest.raises(ValueError):
            family.labels(nope="x")

    def test_snapshot_is_exposition_ready(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "counts").inc(2)
        registry.histogram("h_seconds", "times", buckets=(1.0,)).observe(0.5)
        families = registry.snapshot()
        by_name = {family["name"]: family for family in families}
        assert by_name["c_total"]["samples"] == [{"labels": {}, "value": 2}]
        histogram = by_name["h_seconds"]["samples"][0]
        assert histogram["buckets"] == [[1.0, 1], ["+Inf", 1]]
        assert histogram["count"] == 1


class TestExposition:
    def test_prometheus_text_shape(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "a counter", labels=("tier",))
        family.labels(tier="engine").inc(3)
        text = render_prometheus(registry.snapshot())
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{tier="engine"} 3' in text

    def test_prometheus_text_parses(self):
        """Every non-comment line is ``name[{labels}] value``; histogram
        bucket counts are monotone and end at +Inf == count."""
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        hist = registry.histogram("h_seconds", buckets=DEFAULT_LATENCY_BUCKETS)
        hist.observe(0.003)
        hist.observe(7.0)
        text = render_prometheus(registry.snapshot())
        buckets = []
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name_part, _, value_part = line.rpartition(" ")
            assert name_part, line
            float(value_part)  # parses as a number
            if "{" in name_part:
                assert name_part.endswith("}"), line
            if name_part.startswith("h_seconds_bucket"):
                buckets.append(int(value_part))
        assert buckets == sorted(buckets)
        assert buckets[-1] == 2

    def test_json_document_round_trips(self):
        import json

        registry = MetricsRegistry()
        registry.gauge("g").set(1.5)
        document = json.loads(render_json(registry.snapshot()))
        assert document["families"][0]["name"] == "g"
        assert document["families"][0]["samples"][0]["value"] == 1.5


class TestSlowQueryLog:
    def test_threshold_and_capacity(self):
        log = SlowQueryLog(threshold=0.1, capacity=2)
        assert not log.record("//fast", "core", 0.01)
        assert log.record("//slow1", "core", 0.2)
        assert log.record("//slow2", "core", 0.3)
        assert log.record("//slow3", "core", 0.4)
        assert [entry["query"] for entry in log.entries()] == [
            "//slow2", "//slow3",
        ]

    def test_set_threshold_applies_to_future_records(self):
        log = SlowQueryLog(threshold=1.0)
        assert not log.record("//q", "core", 0.5)
        log.set_threshold(0.1)
        assert log.record("//q", "core", 0.5)
        assert log.threshold == 0.1


class TestMergedShardsProperty:
    """Merged per-thread shards ≡ the single-threaded count (satellite 4)."""

    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=100), max_size=20),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_counter_merge_equals_serial_sum(self, schedules):
        counter = Counter("c_total")

        def work(amounts):
            for amount in amounts:
                counter.inc(amount)

        threads = [
            threading.Thread(target=work, args=(amounts,))
            for amounts in schedules
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == sum(sum(amounts) for amounts in schedules)

    @given(
        st.lists(
            st.lists(
                st.floats(
                    min_value=0.0, max_value=10.0,
                    allow_nan=False, allow_infinity=False,
                ),
                max_size=15,
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_histogram_merge_equals_serial_observation(self, schedules):
        sharded = Histogram("h_seconds")
        serial = Histogram("h_seconds")

        def work(values):
            for value in values:
                sharded.observe(value)

        threads = [
            threading.Thread(target=work, args=(values,))
            for values in schedules
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for values in schedules:
            for value in values:
                serial.observe(value)
        merged, expected = sharded.merged(), serial.merged()
        assert merged.counts == expected.counts
        assert merged.count == expected.count
        assert merged.total == pytest.approx(expected.total)
