"""Smoke tests: every example script runs to completion and prints its key result.

The examples double as documentation; these tests keep them in sync with
the library as it evolves.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: script name → a fragment of output that must appear when it succeeds.
EXPECTED_OUTPUT = {
    "quickstart.py": "engine selects books from years",
    "circuit_reduction.py": "all 16 rows agree with the adder semantics: True",
    "graph_reachability.py": "XPath-computed reachability agrees with BFS: True",
    "fragment_lattice.py": "Fragment inclusions",
    "parallel_evaluation.py": "parallelizability the LOGCFL bound promises",
    "exponential_blowup.py": "(exponential)",
}


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("name", sorted(EXPECTED_OUTPUT))
def test_example_runs_and_reports_success(name):
    completed = run_example(name)
    assert completed.returncode == 0, completed.stderr
    assert EXPECTED_OUTPUT[name] in completed.stdout


def test_every_example_script_is_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_OUTPUT)
