"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def xml_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text("<site><a id='1'><b/></a><a id='2'/></site>", encoding="utf-8")
    return str(path)


class TestEvalCommand:
    def test_node_set_output(self, xml_file, capsys):
        assert main(["eval", "//a[child::b]", xml_file]) == 0
        out = capsys.readouterr().out
        assert "node-set of 1 node(s)" in out
        assert "element(a)" in out

    @pytest.mark.parametrize("engine", ["cvt", "naive", "core", "singleton"])
    def test_all_engines(self, xml_file, engine, capsys):
        assert main(["eval", "/descendant::b", xml_file, "--engine", engine]) == 0
        assert "node-set of 1 node(s)" in capsys.readouterr().out

    def test_scalar_output(self, xml_file, capsys):
        assert main(["eval", "count(//a)", xml_file]) == 0
        assert "2.0" in capsys.readouterr().out

    def test_limit_truncates_output(self, xml_file, capsys):
        assert main(["eval", "//*", xml_file, "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "… and" in out

    def test_missing_file(self, capsys):
        assert main(["eval", "//a", "/nonexistent/file.xml"]) == 2
        assert "error" in capsys.readouterr().err

    def test_syntax_error_returns_one(self, xml_file, capsys):
        assert main(["eval", "//a[", xml_file]) == 1
        assert "error" in capsys.readouterr().err

    def test_fragment_violation_reported(self, xml_file, capsys):
        assert main(["eval", "count(//a)", xml_file, "--engine", "core"]) == 1
        assert "Core XPath" in capsys.readouterr().err


class TestQueryCommand:
    def test_metadata_and_node_set_output(self, xml_file, capsys):
        assert main(["query", "//a[child::b]", xml_file]) == 0
        out = capsys.readouterr().out
        assert "engine   : auto (core selected)" in out
        assert "fragment : positive Core XPath" in out
        assert "plan     :" in out
        assert "node-set of 1 node(s)" in out

    def test_scalar_output(self, xml_file, capsys):
        assert main(["query", "count(//a)", xml_file]) == 0
        out = capsys.readouterr().out
        assert "engine   : auto (cvt selected)" in out
        assert "2.0" in out

    def test_explicit_engine(self, xml_file, capsys):
        assert main(["query", "//a", xml_file, "--engine", "cvt"]) == 0
        assert "engine   : cvt" in capsys.readouterr().out

    def test_stats_prints_engine_counters(self, xml_file, capsys):
        assert main(["query", "//a[child::b]", xml_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "engine stats:" in out
        assert "plan cache          :" in out
        assert "documents           :" in out
        assert "dispatch counts     : core=" in out
        assert "hit rate" in out

    def test_missing_file(self, capsys):
        assert main(["query", "//a", "/nonexistent/file.xml"]) == 2
        assert "error" in capsys.readouterr().err


class TestClassifyCommand:
    def test_basic_classification(self, capsys):
        assert main(["classify", "//a[child::b]"]) == 0
        out = capsys.readouterr().out
        assert "positive Core XPath" in out
        assert "LOGCFL-complete" in out

    def test_verbose_lists_violations(self, capsys):
        assert main(["classify", "//a[count(child::b) > 1]", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "excluded from:" in out
        assert "Core XPath" in out


class TestPlanCommand:
    def test_plan_explains_engine_choice(self, capsys):
        assert main(["plan", "//a[not(child::b)]"]) == 0
        out = capsys.readouterr().out
        assert "selected engine     : core" in out
        assert "fallback chain      : cvt -> naive" in out

    def test_stats_prints_plan_cache_counters(self, capsys):
        query = "//a[child::stats-probe]"
        assert main(["plan", query, "--stats"]) == 0
        first = capsys.readouterr().out
        assert "plan cache          :" in first
        assert "hit rate" in first
        # The second run of the same query must be served from the cache.
        from repro.planner import default_plan_cache

        hits_before = default_plan_cache().stats().hits
        assert main(["plan", query, "--stats"]) == 0
        assert default_plan_cache().stats().hits == hits_before + 1

    def test_stats_includes_engine_dispatch_counts(self, capsys):
        assert main(["plan", "//a", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "dispatch counts     :" in out
        assert "queries             :" in out


class TestFigure1Command:
    def test_prints_lattice(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "P-complete" in out and "PF -> positive Core XPath" in out


class TestStoreCommands:
    # `store query` runs on a command-local engine (cli.py), so no
    # process-default engine cleanup is needed here.

    @pytest.fixture
    def store_dir(self, tmp_path):
        return str(tmp_path / "corpus")

    def test_build_ls_query_round_trip(self, xml_file, store_dir, capsys):
        assert main(["store", "build", xml_file, "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "stored   :" in out and "5 nodes" in out

        assert main(["store", "ls", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "doc" in out and "site" in out

        assert main(
            ["store", "query", "//a[child::b]", "doc", "--store", store_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "snapshot-hydrated" in out
        assert "node-set of 1 node(s)" in out

    def test_query_stats_show_store_counters(self, xml_file, store_dir, capsys):
        assert main(["store", "build", xml_file, "--store", store_dir]) == 0
        capsys.readouterr()
        assert main(
            ["store", "query", "count(//a)", "doc", "--store", store_dir, "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "2.0" in out
        assert "store               : 1 hit(s), 0 miss(es), 1 snapshot load(s)" in out

    def test_query_mmap(self, xml_file, store_dir, capsys):
        assert main(["store", "build", xml_file, "--store", store_dir]) == 0
        capsys.readouterr()
        assert main(
            ["store", "query", "//b", "doc", "--store", store_dir, "--mmap"]
        ) == 0
        assert "node-set of 1 node(s)" in capsys.readouterr().out

    def test_build_custom_key_and_unknown_key(self, xml_file, store_dir, capsys):
        assert main(
            ["store", "build", xml_file, "--store", store_dir, "--key", "mine"]
        ) == 0
        capsys.readouterr()
        assert main(["store", "ls", "--store", store_dir]) == 0
        assert "mine" in capsys.readouterr().out
        assert main(["store", "query", "//a", "ghost", "--store", store_dir]) == 1
        assert "ghost" in capsys.readouterr().err

    def test_key_with_multiple_documents_rejected(self, xml_file, store_dir, capsys):
        assert main(
            ["store", "build", xml_file, xml_file, "--store", store_dir, "--key", "k"]
        ) == 2
        assert "--key" in capsys.readouterr().err

    def test_colliding_basenames_rejected(self, tmp_path, store_dir, capsys):
        first = tmp_path / "x" / "doc.xml"
        second = tmp_path / "y" / "doc.xml"
        for path, body in ((first, "<a/>"), (second, "<b/>")):
            path.parent.mkdir(exist_ok=True)
            path.write_text(body, encoding="utf-8")
        assert main(
            ["store", "build", str(first), str(second), "--store", store_dir]
        ) == 2
        assert "colliding" in capsys.readouterr().err

    def test_empty_store_ls(self, store_dir, capsys):
        assert main(["store", "ls", "--store", store_dir]) == 0
        assert "empty" in capsys.readouterr().out

    def test_ls_is_sorted_with_byte_sizes_and_totals(self, tmp_path, store_dir, capsys):
        for name in ("zeta", "alpha", "mid"):
            path = tmp_path / f"{name}.xml"
            path.write_text(f"<{name}><x/></{name}>", encoding="utf-8")
            assert main(["store", "build", str(path), "--store", store_dir]) == 0
        capsys.readouterr()
        assert main(["store", "ls", "--store", store_dir]) == 0
        first = capsys.readouterr().out
        assert main(["store", "ls", "--store", store_dir]) == 0
        assert capsys.readouterr().out == first  # deterministic, run to run
        lines = first.splitlines()
        keys = [line.split()[0] for line in lines[1:-1]]
        assert keys == sorted(keys) == ["alpha", "mid", "zeta"]
        from repro.store import CorpusStore

        for entry in CorpusStore(store_dir).list():
            assert f"{entry.bytes:>10}" in first  # snapshot byte sizes shown
        assert "total    : 3 key(s), 3 snapshot file(s)," in lines[-1]

    def test_ls_workers_previews_shard_layout(self, xml_file, store_dir, capsys):
        assert main(["store", "build", xml_file, "--store", store_dir]) == 0
        capsys.readouterr()
        assert main(["store", "ls", "--store", store_dir, "--workers", "4"]) == 0
        out = capsys.readouterr().out
        assert "shard" in out.splitlines()[0]
        from repro.store import CorpusStore, shard_of

        [entry] = CorpusStore(store_dir).list()
        expected = shard_of(entry.hash, 4)
        assert out.splitlines()[1].rstrip().endswith(str(expected))

    def test_store_query_workers(self, xml_file, store_dir, capsys):
        assert main(["store", "build", xml_file, "--store", store_dir]) == 0
        capsys.readouterr()
        assert main(
            ["store", "query", "//a[child::b]", "doc", "--store", store_dir,
             "--workers", "2", "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "sharded (2 worker process(es)" in out
        assert "node-set of 1 node(s)" in out
        assert "shard    : worker" in out
        assert "serving             : 2 worker process(es)" in out

    def test_store_query_workers_rejects_explicit_engine(
        self, xml_file, store_dir, capsys
    ):
        assert main(["store", "build", xml_file, "--store", store_dir]) == 0
        capsys.readouterr()
        assert main(
            ["store", "query", "//a", "doc", "--store", store_dir,
             "--workers", "2", "--engine", "cvt"]
        ) == 2
        assert "--workers" in capsys.readouterr().err


class TestQueryWorkers:
    def test_query_through_worker_pool(self, xml_file, capsys):
        assert main(["query", "//a[child::b]", xml_file, "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "snapshot-hydrated in workers" in out
        assert "sharded (2 worker process(es)" in out
        assert "node-set of 1 node(s)" in out

    def test_scalar_through_worker_pool(self, xml_file, capsys):
        assert main(["query", "count(//a)", xml_file, "--workers", "2"]) == 0
        assert "result   : 2.0" in capsys.readouterr().out

    def test_workers_with_explicit_engine_rejected(self, xml_file, capsys):
        assert main(
            ["query", "//a", xml_file, "--workers", "2", "--engine", "naive"]
        ) == 2
        assert "--workers" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", ["-1", "0", "two"])
    def test_non_positive_worker_counts_rejected_by_the_parser(self, xml_file, bad):
        for argv in (
            ["query", "//a", xml_file, "--workers", bad],
            ["store", "ls", "--store", "/tmp/x", "--workers", bad],
            ["serve", "--store", "/tmp/x", "--workers", bad],
        ):
            with pytest.raises(SystemExit) as excinfo:
                build_parser().parse_args(argv)
            assert excinfo.value.code == 2


class TestServeCommand:
    @pytest.fixture
    def served_store(self, xml_file, tmp_path, capsys):
        store_dir = str(tmp_path / "corpus")
        assert main(["store", "build", xml_file, "--store", store_dir]) == 0
        capsys.readouterr()
        return store_dir

    def _serve(self, monkeypatch, lines, argv):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        return main(argv)

    def test_serves_request_lines(self, served_store, monkeypatch, capsys):
        lines = "doc //a[child::b]\ndoc count(//a)\n\n"
        assert self._serve(
            monkeypatch, lines,
            ["serve", "--store", served_store, "--workers", "2", "--stats"],
        ) == 0
        captured = capsys.readouterr()
        assert "doc\tids=[2]" in captured.out
        assert "doc\tvalue=2.0" in captured.out
        assert "serving             : 2 worker process(es), 2 request(s)" in captured.out
        assert "served   : 2 request(s)" in captured.err

    def test_request_errors_do_not_stop_the_loop(
        self, served_store, monkeypatch, capsys
    ):
        lines = "ghost //a\ndoc //a[\nonlyakey\ndoc count(//a)\n"
        assert self._serve(
            monkeypatch, lines, ["serve", "--store", served_store, "--workers", "1"]
        ) == 0
        captured = capsys.readouterr()
        assert "ghost\terror=StoreKeyError" in captured.out
        assert "doc\terror=XPathSyntaxError" in captured.out
        assert "onlyakey\terror=request needs" in captured.out
        assert "doc\tvalue=2.0" in captured.out
        assert "served   : 1 request(s)" in captured.err

    def test_ids_mode_rejects_scalars(self, served_store, monkeypatch, capsys):
        assert self._serve(
            monkeypatch, "doc count(//a)\n",
            ["serve", "--store", served_store, "--workers", "1", "--ids"],
        ) == 0
        assert "error=XPathEvaluationError" in capsys.readouterr().out


class TestLintCommand:
    """`repro lint` delegates wholesale to the repro.analysis CLI."""

    def test_lint_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "clean.py"
        target.parent.mkdir(parents=True)
        target.write_text("def fine():\n    return 1\n", encoding="utf-8")
        assert main(["lint", str(tmp_path / "src")]) == 0
        assert "0 finding(s)" in capsys.readouterr().err

    def test_lint_finding_exits_one(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "engine" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_text("value._bits = 1\n", encoding="utf-8")
        assert main(["lint", str(tmp_path / "src")]) == 1
        assert "immutability" in capsys.readouterr().out

    def test_lint_forwards_leading_options(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        assert "lock-discipline:" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_engine_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["eval", "//a", "x.xml", "--engine", "warp"])

    def test_store_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])
