"""E1 — Figure 1: fragment classification and per-fragment evaluation cost.

The paper's Figure 1 assigns a combined-complexity class to every fragment.
This bench (a) classifies a representative query workload and checks the
assignment, and (b) times evaluation of a representative query of each
fragment with the engine the paper's upper bound suggests, so the relative
cost ordering (PF ≤ positive Core ≤ Core ≤ pWF/pXPath ≤ full XPath) is
visible in the timings.
"""

import pytest

from benchmarks.conftest import report
from repro.bench import representative_queries
from repro.complexity import figure1_assignment, render_figure1
from repro.evaluation import evaluate
from repro.fragments import classify
from repro.xmlmodel import auction_document

DOCUMENT = auction_document(sellers=8, items_per_seller=6, seed=2)

#: fragment → (query, engine used for the timing)
TIMED_QUERIES = {
    "PF": ("/descendant::open_auction/child::bidder", "core"),
    "positive Core XPath": (
        "/descendant::open_auction[child::bidder and descendant::increase]",
        "core",
    ),
    "Core XPath": ("/descendant::open_auction[not(child::bidder)]", "core"),
    "pWF": ("/descendant::bidder[position() + 1 = last()]", "cvt"),
    "pXPath": ("/descendant::item[attribute::region = 'europe']", "cvt"),
    "XPath": ("/descendant::open_auction[count(child::bidder) > 2]", "cvt"),
}


def _build_classification_table() -> list[str]:
    lines = [f"{'query':<62} {'fragment':<22} {'combined complexity':<18}"]
    for expected_fragment, queries in representative_queries().items():
        for query in queries:
            classification = classify(query)
            assert classification.most_specific == expected_fragment
            assert (
                classification.combined_complexity
                == figure1_assignment(expected_fragment).label
            )
            lines.append(
                f"{query:<62} {classification.most_specific:<22} "
                f"{classification.combined_complexity:<18}"
            )
    return lines


def test_figure1_classification_table(benchmark):
    """Regenerate Figure 1 as a classification table over the workload queries."""
    lines = benchmark(_build_classification_table)
    report(
        "E1 / Figure 1 — fragment classification",
        "\n".join(lines) + "\n\n" + render_figure1(),
    )


@pytest.mark.parametrize("fragment", sorted(TIMED_QUERIES))
def test_fragment_query_evaluation(benchmark, fragment):
    """Time a representative query of each fragment on the auction workload."""
    query, engine = TIMED_QUERIES[fragment]
    result = benchmark(evaluate, query, DOCUMENT, engine)
    assert result is not None


@pytest.mark.parametrize("fragment", sorted(TIMED_QUERIES))
def test_fragment_classification_cost(benchmark, fragment):
    """Classification itself is cheap (syntactic) — time it per fragment."""
    query, _ = TIMED_QUERIES[fragment]
    classification = benchmark(classify, query)
    assert classification.most_specific == fragment
