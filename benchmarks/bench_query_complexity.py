"""E12 — Theorem 7.3: the query complexity of XPath (without * / concat) is low.

With the document fixed, growing the query (avoiding multiplication and
``concat``, the two constructs Theorem 7.3 excludes because they let values
grow with the query) must increase the DP evaluator's work only
polynomially — in practice near-linearly, one context-value table per added
sub-expression.
"""

import pytest

from benchmarks.conftest import report
from repro.bench import descendant_chain_query, positive_condition_query
from repro.complexity import ScalingSeries
from repro.evaluation import ContextValueTableEvaluator
from repro.xmlmodel import complete_tree_document

DOCUMENT = complete_tree_document(2, 8)
QUERY_SIZES = (2, 4, 8, 16)


@pytest.mark.parametrize("steps", QUERY_SIZES)
def test_growing_core_query_fixed_document(benchmark, steps):
    """Growing navigational query on the fixed document."""
    query = descendant_chain_query(steps)
    benchmark(ContextValueTableEvaluator(DOCUMENT).evaluate_nodes, query)


@pytest.mark.parametrize("depth", (1, 2, 4, 8))
def test_growing_condition_nesting_fixed_document(benchmark, depth):
    """Growing predicate-nesting depth on the fixed document."""
    query = positive_condition_query(depth)
    benchmark(ContextValueTableEvaluator(DOCUMENT).evaluate_nodes, query)


def test_query_complexity_series(benchmark):
    """Operation counts and table counts as the query grows (document fixed)."""

    def measure():
        operations = ScalingSeries("operations vs |Q| (document fixed)", "|Q|", "operations")
        tables = ScalingSeries("tables vs |Q| (document fixed)", "|Q|", "tables")
        for steps in QUERY_SIZES:
            from repro.xpath import parse

            query = parse(descendant_chain_query(steps))
            evaluator = ContextValueTableEvaluator(DOCUMENT)
            evaluator.evaluate_nodes(query)
            operations.add(query.size(), evaluator.operations)
            tables.add(query.size(), evaluator.table_count())
        return operations, tables

    operations, tables = benchmark(measure)
    assert operations.power_law_exponent() < 1.6
    assert tables.power_law_exponent() < 1.2
    report(
        "E12 / Theorem 7.3 — query complexity",
        operations.format_table()
        + "\n"
        + tables.format_table()
        + f"\nfitted growth: {operations.summary()}; {tables.summary()}",
    )
