"""E4 — Theorem 4.2: SAC¹ circuit value via *positive* Core XPath.

The reduction eliminates negation at the price of duplicating the layer
sub-expression at every ∧-layer, so the query grows exponentially with the
number of ∧-layers — which is tolerable exactly because SAC¹ circuits have
logarithmic depth.  The bench verifies correctness on random semi-unbounded
circuits, reports the measured query sizes against the circuit depth, and
times evaluation with both the linear Core XPath engine and the circuit
compiler (the LOGCFL/parallel route).
"""

import pytest

from benchmarks.conftest import report
from repro.circuits import random_assignment, random_sac1_circuit
from repro.evaluation import CoreXPathEvaluator
from repro.fragments import is_positive_core_xpath
from repro.parallel import parallel_evaluate
from repro.reductions import reduce_sac1_to_positive_core_xpath

INPUT_COUNTS = (4, 8, 16)


def _instance(num_inputs: int, seed: int = 5):
    circuit = random_sac1_circuit(num_inputs, seed=seed)
    assignment = random_assignment(circuit, seed=seed)
    return circuit, assignment, reduce_sac1_to_positive_core_xpath(circuit, assignment)


@pytest.mark.parametrize("num_inputs", INPUT_COUNTS)
def test_sac1_reduction_evaluation(benchmark, num_inputs):
    """Evaluate the Theorem 4.2 query with the linear Core XPath engine."""
    circuit, assignment, instance = _instance(num_inputs)
    assert is_positive_core_xpath(instance.query)

    def run():
        return bool(CoreXPathEvaluator(instance.document).evaluate_nodes(instance.query))

    result = benchmark(run)
    assert result == circuit.value(assignment)


@pytest.mark.parametrize("num_inputs", INPUT_COUNTS)
def test_sac1_reduction_parallel_evaluation(benchmark, num_inputs):
    """Evaluate the same query through the circuit compiler (the SAC¹ view)."""
    circuit, assignment, instance = _instance(num_inputs)
    run = lambda: parallel_evaluate(instance.query, instance.document)  # noqa: E731
    run_report = benchmark(run)
    assert bool(run_report.selected) == circuit.value(assignment)


def test_query_size_vs_circuit_depth(benchmark):
    """Report |Q| against circuit depth and ∧-layer count (the exponential factor)."""

    def measure():
        rows = []
        for num_inputs in INPUT_COUNTS:
            circuit, _, instance = _instance(num_inputs)
            and_layers = sum(
                1 for gate in circuit.gates.values() if gate.kind == "and"
            )
            rows.append(
                (
                    circuit.size(),
                    circuit.depth(),
                    and_layers,
                    instance.document_size,
                    instance.query_size,
                )
            )
        return rows

    rows = benchmark(measure)
    body = ["gates  depth  ∧-gates  |D|    |Q|"]
    for gates, depth, and_layers, document_size, query_size in rows:
        body.append(
            f"{gates:>5}  {depth:>5}  {and_layers:>7}  {document_size:>5}  {query_size:>6}"
        )
    body.append(
        "(|Q| grows with 2^(∧-layers); the circuit's logarithmic depth keeps it polynomial in the input)"
    )
    report("E4 / Theorem 4.2 — SAC¹ reduction sizes", "\n".join(body))
