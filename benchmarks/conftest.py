"""Shared helpers for the benchmark harness.

Every benchmark module corresponds to one experiment id from DESIGN.md's
per-experiment index and does two things:

* it registers ``pytest-benchmark`` timings for the operations the paper
  reasons about (so ``pytest benchmarks/ --benchmark-only`` regenerates the
  numbers), and
* it prints the paper-shaped series/table it reproduces through
  :func:`report`, which writes to the terminal even under pytest's output
  capture at the end of the run (use ``-s`` to see the tables inline).
"""

import sys

import pytest

_REPORTS: list[str] = []


def report(title: str, body: str) -> None:
    """Queue a formatted experiment report for printing at the end of the session."""
    _REPORTS.append(f"\n=== {title} ===\n{body}")


@pytest.fixture(scope="session", autouse=True)
def _print_reports_at_session_end():
    yield
    if _REPORTS:
        sys.stdout.write("\n".join(_REPORTS) + "\n")
