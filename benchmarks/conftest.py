"""Shared helpers for the benchmark harness.

Every benchmark module corresponds to one experiment id from DESIGN.md's
per-experiment index and does two things:

* it registers ``pytest-benchmark`` timings for the operations the paper
  reasons about (so ``pytest benchmarks/ --benchmark-only`` regenerates the
  numbers), and
* it prints the paper-shaped series/table it reproduces through
  :func:`report`, which writes to the terminal even under pytest's output
  capture at the end of the run (use ``-s`` to see the tables inline).

When timed benchmarks actually ran (i.e. not under
``--benchmark-disable``), the session also writes a machine-readable
``BENCH_results.json`` — a flat ``{bench name: median ops/s}`` mapping
plus a ``_meta`` block — so CI can archive the perf trajectory across
PRs as an artifact.  Set ``BENCH_RESULTS_PATH`` to choose the output
path (setting it also forces the file to be written, even empty).
"""

import json
import os
import sys

import pytest

_REPORTS: list[str] = []


def report(title: str, body: str) -> None:
    """Queue a formatted experiment report for printing at the end of the session."""
    _REPORTS.append(f"\n=== {title} ===\n{body}")


@pytest.fixture(scope="session", autouse=True)
def _print_reports_at_session_end():
    yield
    if _REPORTS:
        sys.stdout.write("\n".join(_REPORTS) + "\n")


def _recorded_benchmarks(session):
    """Yield ``(fullname, median_seconds)`` for every timed benchmark."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    for bench in bench_session.benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        median = getattr(getattr(stats, "stats", stats), "median", None)
        if median:
            yield bench.fullname, median


def pytest_sessionfinish(session, exitstatus):
    """Write ``BENCH_results.json`` (bench name → median ops/s) after a run.

    Skipped entirely when nothing was timed (tier-1 runs, smoke runs
    under ``--benchmark-disable``) unless ``BENCH_RESULTS_PATH`` is set,
    so ordinary test sessions never litter the working tree.
    """
    forced_path = os.environ.get("BENCH_RESULTS_PATH")
    rows = dict(_recorded_benchmarks(session))
    if not rows and not forced_path:
        return
    path = forced_path or os.path.join(str(session.config.rootpath), "BENCH_results.json")
    payload = {name: 1.0 / median for name, median in sorted(rows.items())}
    payload["_meta"] = {
        "unit": "median ops/s",
        "python": sys.version.split()[0],
        "benchmarks": len(rows),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    sys.stdout.write(f"\nbench results written to {path}\n")
