"""E2/E3 — Theorem 3.2 (and Figure 2/3): monotone circuit value via Core XPath.

Regenerates two artefacts:

* the Figure 2 carry-bit circuit evaluated through the reduction for all 16
  input combinations (E2), and
* a size sweep over random monotone circuits measuring reduction output
  size and evaluation time (E3) — both must stay polynomial, which is what
  "membership in P" (Proposition 2.7) looks like empirically, while the
  existence of the reduction itself is the P-hardness statement.
"""

import itertools

import pytest

from benchmarks.conftest import report
from repro.circuits import (
    carry_assignment,
    carry_circuit,
    expected_carry,
    random_assignment,
    random_monotone_circuit,
)
from repro.complexity import ScalingSeries
from repro.evaluation import CoreXPathEvaluator
from repro.reductions import reduce_circuit_to_core_xpath

GATE_COUNTS = (4, 8, 16, 32)


def _carry_truth_table() -> list[tuple[tuple[bool, ...], bool, bool]]:
    circuit = carry_circuit()
    rows = []
    for bits in itertools.product([False, True], repeat=4):
        instance = reduce_circuit_to_core_xpath(circuit, carry_assignment(*bits))
        via_xpath = bool(
            CoreXPathEvaluator(instance.document).evaluate_nodes(instance.query)
        )
        rows.append((bits, via_xpath, expected_carry(*bits)))
    return rows


def test_carry_circuit_truth_table(benchmark):
    """E2: all 16 rows of the Figure 2 carry-bit truth table via XPath."""
    rows = benchmark(_carry_truth_table)
    assert all(via_xpath == truth for _, via_xpath, truth in rows)
    body = ["a1 a0 b1 b0 | XPath | adder"]
    for (a1, a0, b1, b0), via_xpath, truth in rows:
        body.append(
            f" {int(a1)}  {int(a0)}  {int(b1)}  {int(b0)} | {str(via_xpath):<5} | {truth}"
        )
    report("E2 / Figure 2+3 — carry-bit circuit via Theorem 3.2", "\n".join(body))


def _evaluate_reduction(num_gates: int, seed: int = 1) -> bool:
    circuit = random_monotone_circuit(num_inputs=6, num_gates=num_gates, seed=seed)
    assignment = random_assignment(circuit, seed=seed)
    instance = reduce_circuit_to_core_xpath(circuit, assignment)
    result = bool(CoreXPathEvaluator(instance.document).evaluate_nodes(instance.query))
    assert result == circuit.value(assignment)
    return result


@pytest.mark.parametrize("num_gates", GATE_COUNTS)
def test_reduction_evaluation_scaling(benchmark, num_gates):
    """E3: end-to-end reduction + Core XPath evaluation for growing circuits."""
    benchmark(_evaluate_reduction, num_gates)


def test_reduction_output_sizes(benchmark):
    """E3: document and query sizes grow linearly with the circuit (log-space reduction)."""

    def measure():
        document_series = ScalingSeries("|D| vs circuit size", "gates", "|D|")
        query_series = ScalingSeries("|Q| vs circuit size", "gates", "|Q|")
        for num_gates in GATE_COUNTS:
            circuit = random_monotone_circuit(6, num_gates, seed=3)
            instance = reduce_circuit_to_core_xpath(
                circuit, random_assignment(circuit, seed=3)
            )
            document_series.add(circuit.size(), instance.document_size)
            query_series.add(circuit.size(), instance.query_size)
        return document_series, query_series

    document_series, query_series = benchmark(measure)
    # Polynomial (indeed close to linear in gates for |Q|; |D| gains the
    # quadratically many layer labels on ports, still polynomial).
    assert document_series.power_law_exponent() < 2.5
    assert query_series.power_law_exponent() < 1.5
    report(
        "E3 / Theorem 3.2 — reduction output sizes",
        document_series.format_table()
        + "\n"
        + query_series.format_table()
        + f"\nfitted growth: {document_series.summary()}; {query_series.summary()}",
    )
