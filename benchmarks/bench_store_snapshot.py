"""E16 — snapshot hydration vs. parse + index construction.

The ``repro.store`` snapshot codec packs a document's node data *and*
its evaluation-ready :class:`~repro.xmlmodel.index.DocumentIndex` arrays
into one framed binary blob, so serving a stored document costs one
linear reconstruction pass instead of the XML scanner plus the O(|D|)
index build.  This bench measures that gap on 10k-node documents and
asserts the two store acceptance gates:

* **speed** — ``load_snapshot(dump_snapshot(doc))`` must be at least 2×
  faster than ``parse_xml(text)`` + index construction on every
  10k-node shape (measured ~6–10×);
* **fidelity** — an engine serving a store-hydrated document must
  produce results identical to one serving a freshly parsed document:
  same ids, same node structure, same scalar values, and the hydrated
  document re-serialises to the same XML text.

Unlike the wall-clock ratios of the concurrency bench, both sides here
are single-threaded, deterministic work with a large margin, so the
floor is asserted unconditionally (CI included).
"""

import sys
import time

import pytest

from benchmarks.conftest import report
from repro.engine import XPathEngine
from repro.store import CorpusStore, dump_snapshot, load_snapshot, snapshot_hash
from repro.xmlmodel import (
    auction_document,
    chain_document,
    complete_tree_document,
    serialize,
    wide_document,
)
from repro.xmlmodel.parser import parse_xml

_DOCUMENTS = {
    "chain-10k": lambda: chain_document(10_000),
    "wide-10k": lambda: wide_document(10_000, tag="a"),
    "complete-2x13": lambda: complete_tree_document(2, 13),
}

#: The mixed workload evaluated to prove store-hydrated fidelity — axis
#: arithmetic, negation, and scalar aggregates (cvt engine) included.
_WORKLOAD = (
    "//a[child::a]",
    "//a[not(child::a)]",
    "/descendant::a[child::a and not(child::b)]",
    "//a/ancestor::a",
    "//b[ancestor::a]/descendant::c",
    "count(//a)",
)

#: Acceptance floor: snapshot load vs parse+index on every 10k shape.
SPEEDUP_FLOOR = 2.0

_FIXTURES = {}


def _fixture(shape):
    """(xml_text, snapshot_bytes) for a shape, built once per session."""
    if shape not in _FIXTURES:
        document = _DOCUMENTS[shape]()
        # The serializer recurses per depth level; the 10k chain needs
        # headroom far beyond the interpreter default.
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(limit, 3 * len(document.nodes) + 1000))
        try:
            text = serialize(document)
        finally:
            sys.setrecursionlimit(limit)
        _FIXTURES[shape] = (text, dump_snapshot(document))
    return _FIXTURES[shape]


def _parse_and_index(text):
    document = parse_xml(text)
    document.index
    return document


def _best_time(function, repeats=7):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("shape", sorted(_DOCUMENTS))
def test_parse_and_index_timings(benchmark, shape):
    """pytest-benchmark timings for the cold path: parse + index build."""
    text, _ = _fixture(shape)
    benchmark(_parse_and_index, text)


@pytest.mark.parametrize("shape", sorted(_DOCUMENTS))
def test_snapshot_load_timings(benchmark, shape):
    """pytest-benchmark timings for the store path: snapshot load."""
    _, blob = _fixture(shape)
    benchmark(load_snapshot, blob)


def test_snapshot_load_speedup_floor():
    """Acceptance gate: load ≥2× faster than parse+index on every 10k shape."""
    rows = []
    ratios = {}
    for shape in sorted(_DOCUMENTS):
        text, blob = _fixture(shape)
        parse_time = _best_time(lambda: _parse_and_index(text))
        load_time = _best_time(lambda: load_snapshot(blob))
        lazy_time = _best_time(lambda: load_snapshot(blob, lazy=True))
        ratios[shape] = parse_time / load_time if load_time else float("inf")
        rows.append(
            f"{shape:>14}  {parse_time * 1e3:10.2f} ms  {load_time * 1e3:9.2f} ms  "
            f"{lazy_time * 1e3:9.2f} ms  {ratios[shape]:6.1f}x"
        )
    header = (
        f"{'document':>14}  {'parse+index':>13}  {'load':>12}  "
        f"{'load-lazy':>12}  {'ratio':>7}"
    )
    report(
        "E16 — snapshot hydration vs parse+index (10k-node documents)",
        "\n".join([header] + rows),
    )
    for shape, ratio in ratios.items():
        assert ratio >= SPEEDUP_FLOOR, (shape, ratios)


def test_store_hydrated_results_identical(tmp_path):
    """Acceptance gate: store-hydrated serving ≡ fresh parse, exactly."""
    store = CorpusStore(tmp_path / "corpus")
    for shape in sorted(_DOCUMENTS):
        text, blob = _fixture(shape)
        store.put(text, key=shape)
        fresh_engine = XPathEngine()
        fresh = fresh_engine.add(parse_xml(text))
        store_engine = XPathEngine().attach_store(store)
        hydrated = store_engine.add_from_store(shape)

        # The hydrated document is byte-identical at every level that
        # matters: XML serialisation, snapshot bytes, and result ids,
        # node structure and scalar values for the whole workload.
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(limit, 3 * hydrated.document.size + 1000))
        try:
            assert serialize(hydrated.document) == text
        finally:
            sys.setrecursionlimit(limit)
        assert dump_snapshot(hydrated.document) == blob
        assert snapshot_hash(dump_snapshot(hydrated.document)) == snapshot_hash(blob)
        for query in _WORKLOAD:
            expected = fresh_engine.evaluate(query, fresh)
            got = store_engine.evaluate(query, hydrated)
            if expected.is_node_set:
                assert got.ids == expected.ids, (shape, query)
                assert [n.tag for n in got.nodes] == [
                    n.tag for n in expected.nodes
                ], (shape, query)
            else:
                assert got.value == expected.value, (shape, query)
        stats = store_engine.stats().store
        assert stats is not None and stats.hits >= 1 and stats.misses == 0


def test_mmap_hydration_identical(tmp_path):
    """The mmap/lazy residency answers exactly like the eager one."""
    store = CorpusStore(tmp_path / "corpus")
    text, _ = _fixture("complete-2x13")
    store.put(text, key="doc")
    eager = store.get("doc")
    lazy = store.get("doc", mmap=True)
    engine = XPathEngine()
    for query in _WORKLOAD:
        a = engine.evaluate(query, eager)
        b = engine.evaluate(query, lazy)
        assert (a.ids if a.is_node_set else a.value) == (
            b.ids if b.is_node_set else b.value
        ), query
