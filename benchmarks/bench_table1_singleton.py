"""E6 — Table 1 / Lemma 5.4 / Theorem 5.5: the Singleton-Success checker on pWF.

Times the guess-and-check evaluation of pWF queries (each exercising
different rows of Table 1) and cross-checks every answer against the
context-value-table evaluator.  Also reports the number of local
consistency checks performed — the quantity the NAuxPDA argument bounds
polynomially.
"""

import pytest

from benchmarks.conftest import report
from repro.evaluation import ContextValueTableEvaluator, SingletonSuccessChecker
from repro.fragments import is_pwf, is_pxpath
from repro.xmlmodel import auction_document

DOCUMENT = auction_document(sellers=5, items_per_seller=4, seed=8)

#: query label → (query, Table 1 rows it exercises)
PWF_QUERIES = {
    "location-steps": (
        "/child::site/child::open_auctions/child::open_auction",
        "χ::t, π1/π2",
    ),
    "exists-condition": (
        "/descendant::open_auction[child::bidder and child::initial]",
        "χ::t[e], e1 and e2, boolean(π)",
    ),
    "disjunction": (
        "/descendant::open_auction[child::bidder or child::seller]",
        "e1 or e2",
    ),
    "position-last": (
        "/descendant::bidder[position() = last()]",
        "position(), last(), RelOp",
    ),
    "arithmetic": (
        "/descendant::bidder[position() + 1 <= last()]",
        "ArithOp, RelOp",
    ),
    "value-comparison": (
        "/descendant::open_auction[child::initial > 100]",
        "RelOp over a node-set operand (pXPath extension, Thm 6.2)",
    ),
}


@pytest.mark.parametrize("label", sorted(PWF_QUERIES))
def test_singleton_success_evaluation(benchmark, label):
    """Full node-set evaluation via the Theorem 5.5 loop over dom."""
    query, _ = PWF_QUERIES[label]
    assert is_pwf(query) or is_pxpath(query)

    def run():
        return SingletonSuccessChecker(DOCUMENT).evaluate_nodes(query)

    nodes = benchmark(run)
    expected = ContextValueTableEvaluator(DOCUMENT).evaluate_nodes(query)
    assert [n.order for n in nodes] == [n.order for n in expected]


@pytest.mark.parametrize("label", sorted(PWF_QUERIES))
def test_cvt_reference_evaluation(benchmark, label):
    """The same queries on the DP evaluator, as the timing reference."""
    query, _ = PWF_QUERIES[label]
    benchmark(ContextValueTableEvaluator(DOCUMENT).evaluate_nodes, query)


def test_consistency_check_counts(benchmark):
    """Report how many Table 1 checks each query needs (polynomial in |D|·|Q|)."""

    def measure():
        rows = []
        for label, (query, table_rows) in sorted(PWF_QUERIES.items()):
            checker = SingletonSuccessChecker(DOCUMENT)
            result = checker.evaluate_nodes(query)
            rows.append((label, len(result), checker.checks, table_rows))
        return rows

    rows = benchmark(measure)
    body = [f"|D| = {DOCUMENT.size}", f"{'workload':<18} {'result':>6} {'checks':>8}  Table 1 rows exercised"]
    for label, count, checks, table_rows in rows:
        body.append(f"{label:<18} {count:>6} {checks:>8}  {table_rows}")
    report("E6 / Table 1 — Singleton-Success consistency checks", "\n".join(body))
