"""E19 — network serving: concurrent TCP clients vs in-process sharded.

The front door (:class:`repro.serving.XPathServer`, ``docs/serving.md``)
adds stream framing, connection multiplexing, admission control and a
dispatcher thread on top of the worker pool.  This experiment measures
what that ingress costs and proves what it may never change:

* **fidelity** (always asserted, CI included): results fetched over TCP
  by 1/4/8 concurrent clients are byte-identical to the engine's
  in-process ``evaluate_sharded`` over the *same* pool — and both equal
  the ground-truth ``evaluate_many_ids``;
* **admission** (always asserted): when offered load exceeds the
  admission window, the excess is rejected with typed ``OVERLOADED``
  frames while the server's in-flight peak never crosses the bound —
  backpressure is O(1) per rejection, not an unbounded backlog;
* **throughput** (reported; the network tier multiplexes onto the same
  workers, so the interesting number is ingress overhead per request,
  not a speedup).

The engine and the server share one pool (``engine.serve_network``), so
the comparison isolates exactly the wire + event-loop + dispatcher
overhead — worker-side evaluation is byte-for-byte the same work.
"""

import asyncio
import os
import time

import pytest

from benchmarks.conftest import report
from repro.engine import XPathEngine
from repro.planner import evaluate_many_ids
from repro.serving import AsyncServingClient, Overloaded, ShardedPool, XPathServer
from repro.store import CorpusStore
from repro.xmlmodel import chain_document, complete_tree_document, wide_document

_DOCUMENTS = {
    "chain-a": lambda: chain_document(3_000),
    "wide-a": lambda: wide_document(3_000, tag="a"),
    "tree-a": lambda: complete_tree_document(2, 10, tags=("a", "b")),
}

_QUERY_TEMPLATES = (
    "//a[ancestor::a]/descendant::a[not(child::b)]",
    "//a[child::a]/ancestor::a[descendant::a]",
    "//a[not(child::a)]/ancestor::a",
    "/descendant::a[descendant::a and not(child::b)]",
)

CLIENT_COUNTS = (1, 4, 8)
WORKERS = 4
OVERLOAD_MAX_INFLIGHT = 2
OVERLOAD_OFFERED = 64

_STATE = {}


def _state():
    """One store + engine + shared pool + live TCP server for the module."""
    if "engine" not in _STATE:
        import tempfile

        root = tempfile.mkdtemp(prefix="repro-e19-")
        store = CorpusStore(root)
        documents = {key: build() for key, build in _DOCUMENTS.items()}
        for key, document in documents.items():
            store.put(document, key=key)
        engine = XPathEngine().attach_store(store)
        server = engine.serve_network(workers=WORKERS)
        requests = [
            (template, key)
            for key in sorted(documents)
            for template in _QUERY_TEMPLATES
        ] * 3
        expected = []
        for query, key in requests:
            expected.append(evaluate_many_ids(documents[key], [query])[0])
        _STATE.update(
            store=store,
            engine=engine,
            server=server,
            address=server.address,
            requests=requests,
            expected=expected,
        )
    return _STATE


def _run_in_process(state):
    """The baseline: the engine's sharded path on the same pool."""
    return [
        result.ids
        for result in state["engine"].evaluate_sharded(
            state["requests"], ids=True
        )
    ]


def _run_network(state, clients):
    """The same requests, striped over N concurrent TCP connections."""
    requests = state["requests"]
    host, port = state["address"]

    async def main():
        connections = await asyncio.gather(*[
            AsyncServingClient.connect(host, port) for _ in range(clients)
        ])
        try:
            stripes = [requests[index::clients] for index in range(clients)]
            batches = await asyncio.gather(*[
                connection.evaluate_batch(stripe, ids=True)
                for connection, stripe in zip(connections, stripes)
            ])
        finally:
            await asyncio.gather(*[c.aclose() for c in connections])
        results = [None] * len(requests)
        for stripe_index, batch in enumerate(batches):
            for position, result in enumerate(batch):
                results[stripe_index + position * clients] = result.ids
        return results

    return asyncio.run(main())


def _best_time(function, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("clients", CLIENT_COUNTS)
def test_network_throughput_timings(benchmark, clients):
    """pytest-benchmark timings for the TCP path per client count."""
    state = _state()
    _run_network(state, clients)  # warm connections' code paths + pool
    benchmark(_run_network, state, clients)


def test_in_process_sharded_timing(benchmark):
    """The same batch on the same pool without the network in the way."""
    state = _state()
    benchmark(_run_in_process, state)


@pytest.mark.parametrize("clients", CLIENT_COUNTS)
def test_network_results_identical_to_in_process_sharded(clients):
    """Fidelity gate (always asserted): TCP ≡ evaluate_sharded ≡ ground truth."""
    state = _state()
    in_process = _run_in_process(state)
    assert in_process == state["expected"]
    assert _run_network(state, clients) == in_process, clients


def test_overload_is_typed_and_bounded():
    """Admission gate: excess load rejects typed; the in-flight peak holds.

    A dedicated 2-worker pool + server with a tiny admission window
    (``max_inflight=2``) is offered a deep pipelined burst.  Rejections
    must be typed :class:`Overloaded` frames (never queued, never an
    untyped failure), accepted requests must still answer correctly, and
    the server's own peak counter must respect the bound — that peak is
    the entire per-request memory the server may accumulate.
    """
    state = _state()
    with ShardedPool(state["store"], workers=2) as pool:
        server = XPathServer(pool, max_inflight=OVERLOAD_MAX_INFLIGHT)
        with server as (host, port):
            query, key = state["requests"][0]
            expected = state["expected"][0]

            async def flood():
                async with await AsyncServingClient.connect(
                    host, port, window=OVERLOAD_OFFERED
                ) as client:
                    return await client.evaluate_batch(
                        [(query, key)] * OVERLOAD_OFFERED,
                        ids=True,
                        return_errors=True,
                    )

            results = asyncio.run(flood())
            rejected = [r for r in results if isinstance(r, Overloaded)]
            answered = [r for r in results if not isinstance(r, Exception)]
            untyped = [
                r for r in results
                if isinstance(r, Exception) and not isinstance(r, Overloaded)
            ]
            peak = server._peak_inflight
    assert not untyped, untyped
    assert len(rejected) + len(answered) == OVERLOAD_OFFERED
    assert rejected, "offered load never exceeded the admission window"
    assert all(r.capacity == OVERLOAD_MAX_INFLIGHT for r in rejected)
    assert all(r.ids == expected for r in answered)
    assert peak <= OVERLOAD_MAX_INFLIGHT, peak
    _STATE["overload"] = (len(answered), len(rejected), peak)


def test_report_summary():
    """One report block: per-client-count wall clock + overload outcome."""
    state = _state()
    in_process = _best_time(lambda: _run_in_process(state))
    network = {
        clients: _best_time(lambda clients=clients: _run_network(state, clients))
        for clients in CLIENT_COUNTS
    }
    count = len(state["requests"])
    rows = [f"{'in-process':>12}  {in_process * 1e3:8.1f} ms"] + [
        f"{f'tcp-{clients}cli':>12}  {seconds * 1e3:8.1f} ms  "
        f"(+{(seconds - in_process) / count * 1e6:.0f} µs/request ingress)"
        for clients, seconds in sorted(network.items())
    ]
    answered, rejected, peak = _STATE.get("overload", ("?", "?", "?"))
    report(
        f"E19 — network serving ({count} requests, {WORKERS} workers, "
        f"{os.cpu_count()} cores)",
        "\n".join(rows)
        + f"\n  overload: {answered} answered, {rejected} rejected typed, "
        f"in-flight peak {peak} (bound {OVERLOAD_MAX_INFLIGHT})",
    )


@pytest.fixture(scope="module", autouse=True)
def _shutdown():
    yield
    engine = _STATE.get("engine")
    if engine is not None:
        engine.shutdown_serving()
