"""E9 — Proposition 2.7 (second part): Core XPath evaluates in O(|D| · |Q|).

Sweeps the document size and the query size independently and fits scaling
exponents to both the wall-clock timings (via pytest-benchmark) and the
implementation-independent axis-application counts.  Linear behaviour in
each dimension separately is exactly the O(|D| · |Q|) claim.
"""

import pytest

from benchmarks.conftest import report
from repro.bench import descendant_chain_query
from repro.complexity import ScalingSeries
from repro.evaluation import CoreXPathEvaluator
from repro.xmlmodel import complete_tree_document

TREE_DEPTHS = (5, 7, 9, 11)
QUERY_STEPS = (4, 8, 16, 32)


@pytest.mark.parametrize("depth", TREE_DEPTHS)
def test_scaling_in_document_size(benchmark, depth):
    """Fixed query, growing document (documents double in size per depth level)."""
    document = complete_tree_document(2, depth)
    query = descendant_chain_query(6)
    benchmark(CoreXPathEvaluator(document).evaluate_nodes, query)


@pytest.mark.parametrize("steps", QUERY_STEPS)
def test_scaling_in_query_size(benchmark, steps):
    """Fixed document, growing query."""
    document = complete_tree_document(2, 8)
    query = descendant_chain_query(steps)
    benchmark(CoreXPathEvaluator(document).evaluate_nodes, query)


def test_fitted_scaling_exponents(benchmark):
    """Fit |D| and |Q| exponents from the axis-application counts."""

    def measure():
        by_document = ScalingSeries("axis work vs |D| (query fixed)", "|D|", "node visits")
        for depth in TREE_DEPTHS:
            document = complete_tree_document(2, depth)
            evaluator = CoreXPathEvaluator(document)
            evaluator.evaluate_nodes(descendant_chain_query(6))
            # Each axis application costs O(|D|); count node visits.
            by_document.add(document.size, evaluator.axis_applications * document.size)
        by_query = ScalingSeries("axis applications vs |Q| (document fixed)", "steps", "axis applications")
        for steps in QUERY_STEPS:
            document = complete_tree_document(2, 8)
            evaluator = CoreXPathEvaluator(document)
            evaluator.evaluate_nodes(descendant_chain_query(steps))
            by_query.add(steps, evaluator.axis_applications)
        return by_document, by_query

    by_document, by_query = benchmark(measure)
    document_exponent = by_document.power_law_exponent()
    query_exponent = by_query.power_law_exponent()
    assert document_exponent < 1.3, "work must stay linear in |D|"
    assert query_exponent < 1.3, "axis applications must stay linear in |Q|"
    report(
        "E9 — Core XPath O(|D|·|Q|) scaling",
        by_document.format_table()
        + "\n"
        + by_query.format_table()
        + f"\nfitted exponents: |D|^{document_exponent:.2f}, |Q|^{query_exponent:.2f} (both ≈ 1)",
    )
