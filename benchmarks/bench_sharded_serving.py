"""E17 — cross-process sharded serving vs. the best single-process path.

The workload is the one the GIL punishes hardest: many *distinct*
documents, each asked *distinct* CPU-heavy Core XPath queries.  Request
coalescing (E15's mechanism) gets no purchase — every request is unique —
so a single process is hard-bounded at one core of pure-Python
evaluation no matter how many threads it runs.  The sharded tier
(:class:`repro.serving.ShardedPool`, ``docs/serving.md``) escapes that
bound: documents are sharded across worker processes warmed from mmap'd
store snapshots, and requests/results cross as id-native wire frames.

Measured paths, all over the same corpus store:

* ``batch``       — ``XPathEngine.evaluate_batch`` (serial, pooled
  evaluators; the in-process baseline);
* ``concurrent4`` — ``XPathEngine.evaluate_concurrent(max_workers=4)``
  (threads under the GIL — no coalescing possible here);
* ``many``        — ``evaluate_many_ids`` per document (the legacy batch
  path);
* ``sharded-N``   — ``ShardedPool.evaluate_batch(ids=True)`` at 1/2/4
  worker processes.

Acceptance gates:

* **fidelity** (always asserted, CI included): sharded results are
  byte-identical to every single-process path, at every worker count;
* **throughput** (asserted when the host can express it: ≥4 CPU cores
  and strict mode — ``BENCH_SPEEDUP_STRICT=1``, the default off-CI):
  ≥2× the *best* single-process path at 4 workers.  Expected range on
  a ≥4-core host: ~2.5–3.5× (near-linear scaling minus wire + routing
  overhead of ~0.1 ms/request).
"""

import os
import time

import pytest

from benchmarks.conftest import report
from repro.engine import XPathEngine
from repro.planner import evaluate_many_ids
from repro.serving import ShardedPool
from repro.store import CorpusStore, StoreKey
from repro.xmlmodel import chain_document, complete_tree_document, wide_document

#: The corpus: distinct shapes so shards do genuinely different work.
_DOCUMENTS = {
    "chain-a": lambda: chain_document(8_000),
    "chain-b": lambda: chain_document(7_000),
    "wide-a": lambda: wide_document(8_000, tag="a"),
    "wide-b": lambda: wide_document(7_000, tag="a"),
    "tree-a": lambda: complete_tree_document(2, 12, tags=("a", "b")),
    "tree-b": lambda: complete_tree_document(3, 8, tags=("a", "b")),
}

#: Distinct heavy queries per document (formatted with a per-key salt so
#: no two requests in the batch are ever identical → zero coalescing).
_QUERY_TEMPLATES = (
    "//a[ancestor::a]/descendant::a[not(child::b)]/ancestor::a[descendant::a]",
    "//a[child::a]/child::a[child::a]/ancestor::a[descendant::a]",
    "//a[not(child::a)]/ancestor::a[descendant::a]",
    "/descendant::a[descendant::a and not(child::b)]/descendant::a",
    "//a[following-sibling::a or preceding-sibling::a]/descendant::a",
)

WORKER_COUNTS = (1, 2, 4)
SPEEDUP_FLOOR = 2.0
MIN_CORES_FOR_FLOOR = 4

_STATE = {}


def _state(tmp_path_factory=None):
    """One store + registered engine + warm pools for the whole module."""
    if "store" not in _STATE:
        import tempfile

        root = tempfile.mkdtemp(prefix="repro-e17-")
        store = CorpusStore(root)
        documents = {key: build() for key, build in _DOCUMENTS.items()}
        for key, document in documents.items():
            store.put(document, key=key)
        engine = XPathEngine().attach_store(store)
        requests = [
            (template, key)
            for key in sorted(documents)
            for template in _QUERY_TEMPLATES
        ]
        # Warm the in-process baseline exactly like the pools are warmed.
        engine.evaluate_batch(
            [(query, StoreKey(key)) for query, key in requests], ids=True
        )
        _STATE["store"] = store
        _STATE["engine"] = engine
        _STATE["documents"] = documents
        _STATE["requests"] = requests
        _STATE["pools"] = {}
    return _STATE


def _pool(workers: int) -> ShardedPool:
    state = _state()
    pool = state["pools"].get(workers)
    if pool is None or pool.closed:
        pool = ShardedPool(state["store"], workers=workers)
        state["pools"][workers] = pool
    return pool


def _engine_requests(state):
    return [(query, StoreKey(key)) for query, key in state["requests"]]


def _run_batch(state):
    return [
        result.ids
        for result in state["engine"].evaluate_batch(
            _engine_requests(state), ids=True
        )
    ]


def _run_concurrent(state):
    return [
        result.ids
        for result in state["engine"].evaluate_concurrent(
            _engine_requests(state), max_workers=4, ids=True
        )
    ]


def _run_many(state):
    out = []
    for key in sorted(state["documents"]):
        out.extend(
            evaluate_many_ids(state["documents"][key], _QUERY_TEMPLATES)
        )
    return out


def _run_sharded(state, workers):
    return [
        result.ids
        for result in _pool(workers).evaluate_batch(state["requests"], ids=True)
    ]


def _best_time(function, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_sharded_throughput_timings(benchmark, workers):
    """pytest-benchmark timings for the sharded batch per worker count."""
    state = _state()
    _run_sharded(state, workers)  # warm the pool before timing
    benchmark(_run_sharded, state, workers)


def test_single_process_batch_timing(benchmark):
    """The in-process baseline the sharded tier must beat."""
    state = _state()
    benchmark(_run_batch, state)


def test_sharded_results_identical_to_every_single_process_path():
    """Fidelity gate (always asserted): same ids everywhere, every count."""
    state = _state()
    batch = _run_batch(state)
    assert batch == _run_concurrent(state)
    assert batch == _run_many(state)
    for workers in WORKER_COUNTS:
        assert _run_sharded(state, workers) == batch, workers


def test_sharded_speedup_floor_vs_best_single_process_path():
    """Throughput gate: ≥2× at 4 workers over the best in-process path."""
    state = _state()
    singles = {
        "batch": _best_time(lambda: _run_batch(state)),
        "concurrent4": _best_time(lambda: _run_concurrent(state)),
        "many": _best_time(lambda: _run_many(state)),
    }
    sharded = {
        workers: _best_time(lambda workers=workers: _run_sharded(state, workers))
        for workers in WORKER_COUNTS
    }
    best_name = min(singles, key=singles.get)
    best_single = singles[best_name]
    speedup = best_single / sharded[4] if sharded[4] else float("inf")
    rows = [
        f"{name:>12}  {seconds * 1e3:8.1f} ms"
        for name, seconds in sorted(singles.items())
    ] + [
        f"{f'sharded-{workers}':>12}  {seconds * 1e3:8.1f} ms"
        for workers, seconds in sorted(sharded.items())
    ]
    requests = len(state["requests"])
    report(
        f"E17 — sharded serving vs single process ({requests} distinct "
        f"requests over {len(_DOCUMENTS)} documents, {os.cpu_count()} cores)",
        "\n".join(rows)
        + f"\n  best single process: {best_name}"
        + f"\n  sharded-4 speedup  : {speedup:5.2f}x (floor {SPEEDUP_FLOOR}x, "
        f"gated: needs >= {MIN_CORES_FOR_FLOOR} cores + strict mode)",
    )
    # Identity is asserted unconditionally above; the wall-clock floor
    # needs hardware that can express it (a 4-worker pool cannot beat one
    # core on a 1-core host) and a quiet machine (strict mode, like E15).
    strict = os.environ.get(
        "BENCH_SPEEDUP_STRICT", "0" if os.environ.get("CI") else "1"
    )
    if strict.lower() in ("", "0", "false", "no"):
        return
    if (os.cpu_count() or 1) < MIN_CORES_FOR_FLOOR:
        pytest.skip(
            f"host has {os.cpu_count()} core(s); the {SPEEDUP_FLOOR}x floor "
            f"needs at least {MIN_CORES_FOR_FLOOR}"
        )
    assert speedup >= SPEEDUP_FLOOR, (singles, sharded)


def test_worker_shares_account_for_every_request():
    """Routing sanity: the 4-worker pool's merged stats cover the batch."""
    state = _state()
    pool = _pool(4)
    before = pool.stats().served
    _run_sharded(state, 4)
    stats = pool.stats()
    assert stats.served - before == len(state["requests"])
    assert sum(w.served for w in stats.per_worker) == stats.served
    # every worker with a shard assignment actually served something
    layout = state["store"].shard_layout(4)
    for worker_stats in stats.per_worker:
        if layout[worker_stats.worker]:
            assert worker_stats.served > 0


@pytest.fixture(scope="module", autouse=True)
def _close_pools():
    yield
    for pool in _STATE.get("pools", {}).values():
        pool.close()
