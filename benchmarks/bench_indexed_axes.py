"""E13 — DocumentIndex: interval-arithmetic axes vs. the object walk.

The set-at-a-time axis application at the heart of the linear-time Core
XPath algorithm has two implementations: the original object walk over
``parent``/``children`` pointers and the :class:`DocumentIndex` path that
turns ``descendant``/``ancestor``/``following``/``preceding`` into
pre-order interval arithmetic over flat integer arrays.  Both are O(|D|);
this bench measures the constant-factor gap on the document shapes the
paper's arguments care about (deep chains, wide flat trees, complete
binary trees) and asserts the acceptance floor: on a 10k-node chain the
indexed ``descendant`` and ``ancestor`` paths must be at least 2× faster
than the object walk.
"""

import os
import time

import pytest

from benchmarks.conftest import report
from repro.evaluation.setaxes import NAVIGATIONAL_AXES, apply_axis_set
from repro.xmlmodel import chain_document, complete_tree_document, wide_document

CHAIN_DEPTH = 10_000

_DOCUMENTS = {
    "chain-10k": lambda: chain_document(CHAIN_DEPTH),
    "wide-10k": lambda: wide_document(10_000),
    "complete-2x13": lambda: complete_tree_document(2, 13),
}

_DOCUMENT_CACHE = {}


def _document(shape):
    if shape not in _DOCUMENT_CACHE:
        document = _DOCUMENTS[shape]()
        document.index  # prebuild: the index is shared per-document state
        _DOCUMENT_CACHE[shape] = document
    return _DOCUMENT_CACHE[shape]


def _seed_nodes(document, axis):
    """A frontier that makes the axis do real work on every shape."""
    if axis in ("ancestor", "ancestor-or-self", "preceding", "preceding-sibling"):
        return {document.nodes[-1]}
    return {document.root.children[0]}


def _best_time(function, repeats=9):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("shape", sorted(_DOCUMENTS))
@pytest.mark.parametrize("axis", ("descendant", "ancestor", "following", "preceding"))
def test_indexed_axis_timings(benchmark, shape, axis):
    """pytest-benchmark timings for the indexed path on each shape."""
    document = _document(shape)
    seeds = _seed_nodes(document, axis)
    benchmark(apply_axis_set, document, axis, seeds, use_index=True)


@pytest.mark.parametrize("shape", sorted(_DOCUMENTS))
@pytest.mark.parametrize("axis", ("descendant", "ancestor", "following", "preceding"))
def test_object_walk_axis_timings(benchmark, shape, axis):
    """The object-walk baseline on the same shapes."""
    document = _document(shape)
    seeds = _seed_nodes(document, axis)
    benchmark(apply_axis_set, document, axis, seeds, use_index=False)


def test_indexed_speedup_floor_and_agreement():
    """Acceptance floor: ≥2× on the 10k chain, identical results everywhere."""
    rows = []
    chain_ratios = {}
    for shape in sorted(_DOCUMENTS):
        document = _document(shape)
        for axis in sorted(NAVIGATIONAL_AXES):
            seeds = _seed_nodes(document, axis)
            indexed_result = apply_axis_set(document, axis, seeds, use_index=True)
            walk_result = apply_axis_set(document, axis, seeds, use_index=False)
            assert indexed_result == walk_result, (shape, axis)
            indexed = _best_time(
                lambda: apply_axis_set(document, axis, seeds, use_index=True)
            )
            walk = _best_time(
                lambda: apply_axis_set(document, axis, seeds, use_index=False)
            )
            ratio = walk / indexed if indexed else float("inf")
            rows.append(
                f"{shape:>14}  {axis:>18}  {indexed * 1e3:8.3f} ms  "
                f"{walk * 1e3:8.3f} ms  {ratio:6.1f}x"
            )
            if shape == "chain-10k":
                chain_ratios[axis] = ratio
    header = (
        f"{'document':>14}  {'axis':>18}  {'indexed':>11}  {'walk':>11}  {'ratio':>7}"
    )
    report("E13 — indexed vs object-walk axis application", "\n".join([header] + rows))
    # Wall-clock ratios on shared CI runners are too noisy for a hard gate;
    # the agreement asserts above always run, the floor only off-CI (or when
    # forced via BENCH_SPEEDUP_STRICT=1).
    strict = os.environ.get(
        "BENCH_SPEEDUP_STRICT", "0" if os.environ.get("CI") else "1"
    )
    if strict.lower() not in ("", "0", "false", "no"):
        assert chain_ratios["descendant"] >= 2.0, chain_ratios
        assert chain_ratios["ancestor"] >= 2.0, chain_ratios


def test_batch_queries_share_index(benchmark):
    """evaluate_many amortises index construction and planning across queries."""
    from repro.planner import PlanCache, evaluate_many

    document = chain_document(2_000)
    queries = [
        "/descendant::a[child::a]",
        "//a[not(child::a)]",
        "//a/ancestor::a",
        "/descendant::a[child::a]",  # repeated: plan-cache hit
    ]
    cache = PlanCache(maxsize=8)
    results = benchmark(evaluate_many, document, queries, cache=cache)
    assert len(results) == 4
    assert cache.stats().hits >= 1
