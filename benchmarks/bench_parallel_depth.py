"""E10 — Theorems 4.1/5.5/6.2, Remark 5.6: positive fragments are parallelizable.

Positive queries compile to semi-unbounded monotone circuits; the circuit
depth is the idealised parallel running time and the size is the total
work.  The bench shows that as the document grows, work grows roughly
linearly while depth stays flat — the hallmark of an NC algorithm — and
times both the compiled-circuit evaluation and the sequential engines.
"""

import pytest

from benchmarks.conftest import report
from repro.bench import positive_condition_query
from repro.complexity import ScalingSeries
from repro.evaluation import CoreXPathEvaluator
from repro.parallel import compile_positive_query, evaluate_in_layers, parallel_evaluate
from repro.xmlmodel import complete_tree_document

# Start at depth 8 so the nested condition of the query is satisfiable on
# every document in the sweep (shallower trees collapse the circuit to
# constants, which would make the depth comparison vacuous).
TREE_DEPTHS = (8, 9, 10, 11)
QUERY = positive_condition_query(3)


@pytest.mark.parametrize("depth", TREE_DEPTHS)
def test_parallel_circuit_evaluation(benchmark, depth):
    """Compile + layer-evaluate the positive query on growing documents."""
    document = complete_tree_document(2, depth)
    benchmark(parallel_evaluate, QUERY, document)


@pytest.mark.parametrize("depth", TREE_DEPTHS)
def test_sequential_reference_evaluation(benchmark, depth):
    """The sequential linear-time evaluator on the same workload (reference)."""
    document = complete_tree_document(2, depth)
    benchmark(CoreXPathEvaluator(document).evaluate_nodes, QUERY)


def test_depth_vs_work_series(benchmark):
    """Report circuit depth (parallel time) and size (work) as |D| grows."""

    def measure():
        rows = []
        for depth in TREE_DEPTHS:
            document = complete_tree_document(2, depth)
            compiled = compile_positive_query(QUERY, document)
            run = evaluate_in_layers(compiled)
            sequential = CoreXPathEvaluator(document)
            expected = sequential.evaluate_nodes(QUERY)
            assert [n.order for n in run.selected] == [n.order for n in expected]
            rows.append(
                (document.size, len(run.selected), run.depth, run.size, run.max_width, run.speedup_bound)
            )
        return rows

    rows = benchmark(measure)
    depth_series = ScalingSeries("circuit depth vs |D|", "|D|", "depth")
    work_series = ScalingSeries("circuit size vs |D|", "|D|", "gates")
    body = ["   |D|  selected  depth   gates   width  work/depth"]
    for document_size, selected, depth, size, width, speedup in rows:
        depth_series.add(document_size, depth)
        work_series.add(document_size, size)
        body.append(
            f"{document_size:>6} {selected:>9} {depth:>6} {size:>7} {width:>7} {speedup:>11.1f}"
        )
    # Work grows with the document; parallel time (depth) is essentially flat.
    assert work_series.power_law_exponent() > 0.6
    assert depth_series.power_law_exponent() < 0.25
    body.append(
        f"fitted growth: work ~ |D|^{work_series.power_law_exponent():.2f}, "
        f"depth ~ |D|^{depth_series.power_law_exponent():.2f}"
    )
    report("E10 — parallelizability of positive queries (Remark 5.6)", "\n".join(body))
