"""E11 — Theorem 7.2: the data complexity of XPath is low.

With the query fixed, the context-value-table evaluator's work and memory
(table entries) must grow polynomially — in practice near-linearly — with
the document size, including for queries that use negation, arithmetic and
string functions (full XPath).  That is the empirical face of "XPath is in
L w.r.t. data complexity": the per-expression tables are small and there
are only |Q| (a constant, here) of them.
"""

import pytest

from benchmarks.conftest import report
from repro.complexity import ScalingSeries
from repro.evaluation import ContextValueTableEvaluator
from repro.xmlmodel import auction_document

SELLER_COUNTS = (2, 4, 8, 16)

#: A fixed full-XPath query (negation, arithmetic, string manipulation).
FIXED_QUERY = (
    "/descendant::open_auction[not(child::bidder) or "
    "count(child::bidder) * 2 >= 4][contains(child::item/child::description, 'item')]"
)


def _document(sellers: int):
    return auction_document(sellers=sellers, items_per_seller=5, seed=13)


@pytest.mark.parametrize("sellers", SELLER_COUNTS)
def test_fixed_query_growing_document(benchmark, sellers):
    """Wall-clock time of the fixed query as the document grows."""
    document = _document(sellers)
    benchmark(ContextValueTableEvaluator(document).evaluate_nodes, FIXED_QUERY)


def test_data_complexity_series(benchmark):
    """Operation counts and table sizes for the fixed query over growing documents."""

    def measure():
        operations = ScalingSeries("operations vs |D| (query fixed)", "|D|", "operations")
        tables = ScalingSeries("table entries vs |D| (query fixed)", "|D|", "entries")
        for sellers in SELLER_COUNTS:
            document = _document(sellers)
            evaluator = ContextValueTableEvaluator(document)
            evaluator.evaluate_nodes(FIXED_QUERY)
            operations.add(document.size, evaluator.operations)
            tables.add(document.size, evaluator.table_entries())
        return operations, tables

    operations, tables = benchmark(measure)
    assert operations.power_law_exponent() < 2.0
    assert tables.power_law_exponent() < 1.5
    report(
        "E11 / Theorem 7.2 — data complexity",
        operations.format_table()
        + "\n"
        + tables.format_table()
        + f"\nfitted growth: {operations.summary()}; {tables.summary()}"
        + "\n(table count is fixed by the query: "
        f"{ContextValueTableEvaluator(_document(2)).table_count()} after construction)",
    )
