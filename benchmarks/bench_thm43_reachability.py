"""E5 — Theorem 4.3 / Figure 5: directed reachability via a PF query.

Reproduces the Figure 5 example (the 4-vertex graph, its transposed
adjacency matrix and the tree encoding) and sweeps random digraphs of
growing size, measuring document size, query size and evaluation time of
the predicate-free query.  Correctness is asserted against BFS on every
instance.
"""

import pytest

from benchmarks.conftest import report
from repro.complexity import ScalingSeries
from repro.evaluation import CoreXPathEvaluator
from repro.fragments import is_pf
from repro.graphs import figure5_graph, is_reachable, random_digraph
from repro.reductions import reduce_reachability_to_pf

VERTEX_COUNTS = (3, 4, 6, 8)


def _figure5_matrix() -> list[list[bool]]:
    graph = figure5_graph()
    matrix = []
    for source in range(graph.num_vertices):
        row = []
        for target in range(graph.num_vertices):
            instance = reduce_reachability_to_pf(graph, source, target)
            via_xpath = bool(
                CoreXPathEvaluator(instance.document).evaluate_nodes(instance.query)
            )
            assert via_xpath == is_reachable(graph, source, target)
            row.append(via_xpath)
        matrix.append(row)
    return matrix


def test_figure5_reachability_matrix(benchmark):
    """The full reachability matrix of the Figure 5 graph, via PF queries."""
    matrix = benchmark(_figure5_matrix)
    body = ["      " + "  ".join(f"v{j + 1}" for j in range(len(matrix)))]
    for index, row in enumerate(matrix):
        body.append(f"v{index + 1}:   " + "   ".join("1" if bit else "." for bit in row))
    report("E5 / Figure 5 — reachability via the Theorem 4.3 PF query", "\n".join(body))


def _evaluate_instance(num_vertices: int, seed: int = 2) -> bool:
    graph = random_digraph(num_vertices, edge_probability=0.3, seed=seed)
    instance = reduce_reachability_to_pf(graph, 0, num_vertices - 1)
    assert is_pf(instance.query)
    result = bool(CoreXPathEvaluator(instance.document).evaluate_nodes(instance.query))
    assert result == is_reachable(graph, 0, num_vertices - 1)
    return result


@pytest.mark.parametrize("num_vertices", VERTEX_COUNTS)
def test_reachability_query_evaluation(benchmark, num_vertices):
    """Evaluation time of the PF query as the graph grows."""
    benchmark(_evaluate_instance, num_vertices)


def test_reduction_sizes_are_polynomial(benchmark):
    """|D| and |Q| of the Theorem 4.3 instances as the graph grows."""

    def measure():
        document_series = ScalingSeries("|D| vs |V|", "|V|", "|D|")
        query_series = ScalingSeries("|Q| vs |V|", "|V|", "steps")
        for num_vertices in VERTEX_COUNTS:
            graph = random_digraph(num_vertices, edge_probability=0.3, seed=7)
            instance = reduce_reachability_to_pf(graph, 0, num_vertices - 1)
            document_series.add(num_vertices, instance.document_size)
            query_series.add(num_vertices, instance.query_size)
        return document_series, query_series

    document_series, query_series = benchmark(measure)
    assert document_series.power_law_exponent() < 3.5  # O(|V|^3) spine × side chains
    assert query_series.power_law_exponent() < 2.5  # O(|V|^2) gadget steps
    report(
        "E5 / Theorem 4.3 — reduction sizes",
        document_series.format_table()
        + "\n"
        + query_series.format_table()
        + f"\nfitted growth: {document_series.summary()}; {query_series.summary()}",
    )
