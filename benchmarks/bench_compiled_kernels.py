"""E20 — vectorized kernel backend vs. the pure-Python reference.

The kernel backends (:mod:`repro.xmlmodel.kernels`) implement the same
id-set algebra and axis kernels twice: ``pure`` as flat Python loops
(the differential baseline) and ``vectorized`` as numpy array
operations.  This bench runs E14's 10k-node documents (deep chain, wide
flat tree, complete binary tree) through E14's mixed Core XPath workload
under each backend and asserts the acceptance floor: on both the 10k
chain and the 10k wide document the vectorized backend must finish the
workload at least 3× faster than pure.

Agreement is asserted unconditionally — every query's id list must be
identical under both backends — while the wall-clock floor is gated
exactly like E14/E17/E18: skipped on shared CI runners unless forced
with ``BENCH_SPEEDUP_STRICT=1``.
"""

import os
import time

import pytest

pytest.importorskip("numpy", reason="E20 compares the numpy-backed kernels")

from benchmarks.bench_idnative_core import _DOCUMENTS, _WORKLOAD, _best_time
from benchmarks.conftest import report
from repro.evaluation.core import CoreXPathEvaluator
from repro.xmlmodel.kernels import use_backend

#: Acceptance floor asserted on the 10k-node shapes (vectorized vs pure).
SPEEDUP_FLOOR = 3.0

_DOCUMENT_CACHE = {}


def _document(shape):
    if shape not in _DOCUMENT_CACHE:
        document = _DOCUMENTS[shape]()
        document.index  # prebuild: the index is shared per-document state
        _DOCUMENT_CACHE[shape] = document
    return _DOCUMENT_CACHE[shape]


def _run_workload_ids(document):
    # A fresh evaluator per run so condition-set caches are not carried
    # between timed runs; the id-native path keeps every set inside the
    # kernel backend until the final tolist boundary.
    evaluator = CoreXPathEvaluator(document)
    return [evaluator.evaluate_ids(query) for query in _WORKLOAD]


@pytest.mark.parametrize("backend", ("pure", "vectorized"))
@pytest.mark.parametrize("shape", sorted(_DOCUMENTS))
def test_kernel_workload_timings(benchmark, shape, backend):
    """pytest-benchmark timings for the E14 workload under each backend."""
    document = _document(shape)
    with use_backend(backend):
        _run_workload_ids(document)  # warm the per-backend kernel state
        benchmark(_run_workload_ids, document)


def test_vectorized_speedup_floor_and_agreement():
    """Acceptance floor: ≥3× on both 10k shapes, identical ids everywhere."""
    rows = []
    ratios = {}
    for shape in sorted(_DOCUMENTS):
        document = _document(shape)
        with use_backend("pure"):
            pure_results = _run_workload_ids(document)
            pure_time = _best_time(lambda: _run_workload_ids(document))
        with use_backend("vectorized"):
            vectorized_results = _run_workload_ids(document)
            vectorized_time = _best_time(lambda: _run_workload_ids(document))
        for query, got, expected in zip(
            _WORKLOAD, vectorized_results, pure_results
        ):
            assert got == expected, (shape, query)
        ratio = pure_time / vectorized_time if vectorized_time else float("inf")
        ratios[shape] = ratio
        rows.append(
            f"{shape:>14}  {pure_time * 1e3:9.2f} ms  "
            f"{vectorized_time * 1e3:9.2f} ms  {ratio:6.1f}x"
        )
    header = f"{'document':>14}  {'pure':>12}  {'vectorized':>12}  {'ratio':>7}"
    report(
        "E20 — vectorized vs pure kernel backend (E14 workload, ids path)",
        "\n".join([header] + rows),
    )
    # Same gating as E14: agreement always, wall-clock floor only off-CI
    # (or when forced via BENCH_SPEEDUP_STRICT=1).
    strict = os.environ.get(
        "BENCH_SPEEDUP_STRICT", "0" if os.environ.get("CI") else "1"
    )
    if strict.lower() not in ("", "0", "false", "no"):
        assert ratios["chain-10k"] >= SPEEDUP_FLOOR, ratios
        assert ratios["wide-10k"] >= SPEEDUP_FLOOR, ratios


def test_backends_agree_on_evaluate_nodes():
    """The node materialisation boundary is backend-independent too."""
    for shape in sorted(_DOCUMENTS):
        document = _document(shape)
        with use_backend("pure"):
            pure_nodes = [
                CoreXPathEvaluator(document).evaluate_nodes(query)
                for query in _WORKLOAD
            ]
        with use_backend("vectorized"):
            vectorized_nodes = [
                CoreXPathEvaluator(document).evaluate_nodes(query)
                for query in _WORKLOAD
            ]
        for query, got, expected in zip(_WORKLOAD, vectorized_nodes, pure_nodes):
            assert got == expected, (shape, query)
