"""E8 — the introduction's claim: naive engines are exponential, the DP is not.

The paper's introduction (and the experiments of its companion paper [3])
observes that functional-style XPath engines take time exponential in the
query size.  This bench reproduces the *shape* of that experiment with the
engines built here:

* the naive functional evaluator blows up exponentially in the number of
  steps of a sibling-hopping query over a caterpillar document,
* the context-value-table DP and the Core XPath linear algorithm stay
  polynomial on exactly the same workload,
* ElementTree's ElementPath engine is timed on a child-chain workload of
  the same size as an external reference point.
"""

import pytest

from benchmarks.conftest import report
from repro.bench import caterpillar_workload, elementtree_count
from repro.complexity import ScalingSeries
from repro.evaluation import ContextValueTableEvaluator, CoreXPathEvaluator, NaiveEvaluator
from repro.xmlmodel import chain_document

NAIVE_STEPS = (4, 6, 8, 10, 12)
DP_STEPS = (4, 8, 12, 16, 20)


@pytest.mark.parametrize("steps", NAIVE_STEPS)
def test_naive_functional_evaluator(benchmark, steps):
    """Exponential: the per-node functional semantics without sharing."""
    document, query = caterpillar_workload(steps, length=2 * max(NAIVE_STEPS) + 2)
    benchmark(NaiveEvaluator(document).evaluate_nodes, query)


@pytest.mark.parametrize("steps", DP_STEPS)
def test_context_value_table_evaluator(benchmark, steps):
    """Polynomial: the context-value-table dynamic program on the same workload."""
    document, query = caterpillar_workload(steps, length=2 * max(DP_STEPS) + 2)
    benchmark(ContextValueTableEvaluator(document).evaluate_nodes, query)


@pytest.mark.parametrize("steps", DP_STEPS)
def test_core_linear_evaluator(benchmark, steps):
    """Linear: the Core XPath set-at-a-time algorithm on the same workload."""
    document, query = caterpillar_workload(steps, length=2 * max(DP_STEPS) + 2)
    benchmark(CoreXPathEvaluator(document).evaluate_nodes, query)


@pytest.mark.parametrize("steps", DP_STEPS)
def test_elementtree_reference_engine(benchmark, steps):
    """External reference: ElementTree on a child-chain query of the same length."""
    document = chain_document(max(DP_STEPS) + 2, tag="a")
    element_path = "./" + "/".join(["a"] * steps)
    benchmark(elementtree_count, document, element_path)


def test_operation_count_series(benchmark):
    """The paper-shaped series: operations per engine as the query grows."""

    def measure():
        naive_series = ScalingSeries("naive functional evaluator", "steps", "operations")
        cvt_series = ScalingSeries("context-value-table DP", "steps", "operations")
        core_series = ScalingSeries("Core XPath linear algorithm", "steps", "axis applications")
        for steps in NAIVE_STEPS:
            document, query = caterpillar_workload(steps, length=2 * max(NAIVE_STEPS) + 2)
            naive = NaiveEvaluator(document)
            cvt = ContextValueTableEvaluator(document)
            core = CoreXPathEvaluator(document)
            naive_result = naive.evaluate_nodes(query)
            cvt_result = cvt.evaluate_nodes(query)
            core_result = core.evaluate_nodes(query)
            assert (
                [n.order for n in naive_result]
                == [n.order for n in cvt_result]
                == [n.order for n in core_result]
            )
            naive_series.add(steps, naive.operations)
            cvt_series.add(steps, cvt.operations)
            core_series.add(steps, core.axis_applications)
        return naive_series, cvt_series, core_series

    naive_series, cvt_series, core_series = benchmark(measure)
    assert naive_series.exponential_base() > 1.5
    assert cvt_series.power_law_exponent() < 2.5
    body = (
        naive_series.format_table()
        + "\n"
        + cvt_series.format_table()
        + "\n"
        + core_series.format_table()
        + f"\nnaive growth per step  : x{naive_series.exponential_base():.2f} (exponential)"
        + f"\nDP growth              : steps^{cvt_series.power_law_exponent():.2f} (polynomial)"
        + f"\nCore XPath growth      : steps^{core_series.power_law_exponent():.2f} (linear)"
    )
    report("E8 — exponential naive evaluation vs. polynomial DP", body)
