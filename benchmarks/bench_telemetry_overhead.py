"""Telemetry overhead on the E14 hot loop: instrumentation must stay ≤5%.

PR 9 put telemetry on every engine evaluation: two counter increments
(queries, per-engine dispatch), one histogram observation, one
slow-query threshold check, and two no-op span hooks
(``maybe_span(None, ...)``) on the untraced path.  This bench measures
the wall cost of exactly that per-query bundle and gates it at **5% of
the per-query evaluation time** on the E14 workload (the id-native Core
XPath mixed workload over a 10k-node document) — the contract that the
observability layer is cheap enough to leave on in production.

Two supporting measurements ride along, report-only: the per-query cost
of opt-in tracing (``trace=True`` vs off — the price callers choose to
pay), and the traced/untraced answer agreement (always asserted).
"""

import os
import time

import pytest

from benchmarks.conftest import report
from repro.engine import XPathEngine
from repro.telemetry import Counter, Histogram, MetricsRegistry, SlowQueryLog
from repro.telemetry.trace import maybe_span
from repro.xmlmodel import wide_document

#: The E14 mixed Core XPath workload (see bench_idnative_core.py).
_WORKLOAD = (
    "//a[child::a]",
    "//a[not(child::a)]",
    "/descendant::a[child::a and not(child::b)]",
    "//a/ancestor::a",
    "//a[descendant::b]",
    "//b[ancestor::a]/descendant::c",
    "//a[not(following-sibling::a)]",
)

#: The acceptance ceiling: telemetry ≤5% of per-query evaluation time.
OVERHEAD_CEILING = 0.05

_ENGINE = XPathEngine()
_DOC = None


def _doc():
    global _DOC
    if _DOC is None:
        _DOC = _ENGINE.add(wide_document(10_000, tag="a"))
    return _DOC


def _best_time(function, repeats=7):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _run_workload(trace=False):
    doc = _doc()
    return [_ENGINE.evaluate(query, doc, trace=trace) for query in _WORKLOAD]


def _telemetry_bundle_cost(iterations=10_000):
    """Per-call cost of the exact untraced-path telemetry bundle."""
    registry = MetricsRegistry()
    queries: Counter = registry.counter("bench_queries_total")
    dispatch = registry.counter("bench_dispatch_total", labels=("engine",))
    seconds: Histogram = registry.histogram("bench_query_seconds")
    slow_log = SlowQueryLog()  # default threshold: nothing recorded

    def bundle():
        for _ in range(iterations):
            queries.inc()
            dispatch.labels(engine="core").inc()
            seconds.observe(0.0004)
            slow_log.record("//a[child::a]", "core", 0.0004)
            with maybe_span(None, "plan"):
                pass
            with maybe_span(None, "eval", engine="core"):
                pass

    return _best_time(bundle, repeats=5) / iterations


def test_untraced_results_carry_no_trace_but_a_wall_time():
    for result in _run_workload(trace=False):
        assert result.trace is None
        assert result.wall_time > 0.0


def test_tracing_changes_no_answers():
    plain = _run_workload(trace=False)
    traced = _run_workload(trace=True)
    for query, a, b in zip(_WORKLOAD, plain, traced):
        normalise = lambda r: r.ids if r.is_node_set else r.value  # noqa: E731
        assert normalise(a) == normalise(b), query
        assert b.trace is not None


def test_telemetry_overhead_is_within_five_percent():
    """The gate: per-query telemetry cost ≤5% of per-query eval time."""
    _run_workload()  # warm the plan cache: steady-state is what we gate
    per_query_eval = _best_time(_run_workload) / len(_WORKLOAD)
    per_query_telemetry = _telemetry_bundle_cost()
    share = per_query_telemetry / per_query_eval

    untraced = _best_time(lambda: _run_workload(trace=False))
    traced = _best_time(lambda: _run_workload(trace=True))
    trace_ratio = traced / untraced if untraced else float("inf")

    report(
        "Telemetry overhead — E14 workload through XPathEngine (wide-10k)",
        "\n".join([
            f"per-query evaluation      : {per_query_eval * 1e6:9.1f} µs",
            f"per-query telemetry bundle: {per_query_telemetry * 1e6:9.3f} µs",
            f"telemetry share           : {share * 100:9.2f} %  "
            f"(ceiling {OVERHEAD_CEILING * 100:.0f} %)",
            f"opt-in tracing ratio      : {trace_ratio:9.2f} x  (report only)",
        ]),
    )
    # Same convention as the other perf gates: wall-clock ratios on shared
    # CI runners are noisy, so the hard gate runs off-CI (or when forced
    # via BENCH_SPEEDUP_STRICT=1); the agreement asserts above always run.
    strict = os.environ.get(
        "BENCH_SPEEDUP_STRICT", "0" if os.environ.get("CI") else "1"
    )
    if strict.lower() not in ("", "0", "false", "no"):
        assert share <= OVERHEAD_CEILING, (
            f"telemetry bundle is {share:.1%} of per-query time "
            f"({per_query_telemetry * 1e6:.2f} µs of {per_query_eval * 1e6:.1f} µs)"
        )


@pytest.mark.parametrize("trace", [False, True], ids=["untraced", "traced"])
def test_workload_timings(benchmark, trace):
    """pytest-benchmark timings for the instrumented engine path."""
    _run_workload()  # warm
    benchmark(_run_workload, trace)
