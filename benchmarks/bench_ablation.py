"""Ablation benches for the two design choices DESIGN.md calls out.

A1 — *sharing*: the only difference between the naive evaluator and the
context-value-table evaluator is that the latter deduplicates frontiers and
memoises (sub-expression, context) pairs.  The ablation runs both on the
same realistic query over the auction document.

A2 — *set-at-a-time axes*: the Core XPath evaluator applies an axis to a
whole node set in one O(|D|) sweep, whereas the DP evaluator applies
:func:`repro.xmlmodel.axes.axis_step` per frontier node.  The ablation runs
both engines on the same descendant-heavy Core query over growing
documents; the gap is the cost of per-node recursive-axis application.
"""

import pytest

from benchmarks.conftest import report
from repro.bench import caterpillar_workload
from repro.evaluation import ContextValueTableEvaluator, CoreXPathEvaluator, NaiveEvaluator
from repro.xmlmodel import auction_document, complete_tree_document

AUCTION = auction_document(sellers=6, items_per_seller=5, seed=21)

#: A nested-condition query whose sub-conditions repeat across context nodes,
#: i.e. exactly the situation sharing pays off in.
SHARING_QUERY = (
    "/descendant::open_auction[child::bidder[child::increase] and "
    "child::item[child::description]]/child::seller"
)

DESCENDANT_QUERY = "/descendant::open_auction[descendant::increase]/descendant::description"

TREE_DEPTHS = (6, 8, 10)


class TestSharingAblation:
    def test_with_sharing(self, benchmark):
        benchmark(ContextValueTableEvaluator(AUCTION).evaluate_nodes, SHARING_QUERY)

    def test_without_sharing(self, benchmark):
        benchmark(NaiveEvaluator(AUCTION).evaluate_nodes, SHARING_QUERY)

    def test_operation_count_gap(self, benchmark):
        def measure():
            with_sharing = ContextValueTableEvaluator(AUCTION)
            without_sharing = NaiveEvaluator(AUCTION)
            shared_result = with_sharing.evaluate_nodes(SHARING_QUERY)
            unshared_result = without_sharing.evaluate_nodes(SHARING_QUERY)
            assert [n.order for n in shared_result] == [n.order for n in unshared_result]
            return with_sharing.operations, without_sharing.operations

        shared_ops, unshared_ops = benchmark(measure)
        assert shared_ops <= unshared_ops
        document, query = caterpillar_workload(10, length=22)
        cvt = ContextValueTableEvaluator(document)
        naive = NaiveEvaluator(document)
        cvt.evaluate_nodes(query)
        naive.evaluate_nodes(query)
        body = [
            "workload                         with sharing   without sharing",
            f"auction nested conditions        {shared_ops:>12}   {unshared_ops:>15}",
            f"caterpillar, 10 steps            {cvt.operations:>12}   {naive.operations:>15}",
            "(operation counts; identical answers)",
        ]
        report("A1 — ablation: context-value-table sharing", "\n".join(body))


class TestAxisStrategyAblation:
    @pytest.mark.parametrize("depth", TREE_DEPTHS)
    def test_set_at_a_time_axes(self, benchmark, depth):
        document = complete_tree_document(2, depth)
        benchmark(CoreXPathEvaluator(document).evaluate_nodes, DESCENDANT_QUERY_FOR_TREE)

    @pytest.mark.parametrize("depth", TREE_DEPTHS)
    def test_per_node_axes(self, benchmark, depth):
        document = complete_tree_document(2, depth)
        benchmark(ContextValueTableEvaluator(document).evaluate_nodes, DESCENDANT_QUERY_FOR_TREE)

    def test_answers_agree(self, benchmark):
        def measure():
            rows = []
            for depth in TREE_DEPTHS:
                document = complete_tree_document(2, depth)
                core = CoreXPathEvaluator(document)
                cvt = ContextValueTableEvaluator(document)
                core_result = core.evaluate_nodes(DESCENDANT_QUERY_FOR_TREE)
                cvt_result = cvt.evaluate_nodes(DESCENDANT_QUERY_FOR_TREE)
                assert [n.order for n in core_result] == [n.order for n in cvt_result]
                rows.append((document.size, core.axis_applications, cvt.operations))
            return rows

        rows = benchmark(measure)
        body = ["  |D|   set-at-a-time axis applications   per-node operations"]
        for size, applications, operations in rows:
            body.append(f"{size:>5}   {applications:>33}   {operations:>19}")
        report("A2 — ablation: set-at-a-time vs per-node axis application", "\n".join(body))


#: Core query used by the axis-strategy ablation on the complete binary trees
#: (tags cycle a/b/c by level, so descendant steps fan out over many nodes).
DESCENDANT_QUERY_FOR_TREE = "/descendant-or-self::a[descendant::c]/descendant::b[child::c]"
