"""E15 — concurrent serving throughput of ``XPathEngine.evaluate_concurrent``.

The serving shape this measures is the plan cache's own motivating
workload (hot queries repeated over and over) pushed through the
concurrent front end: a small set of expensive queries against a
10k-node document, duplicated many times, evaluated on a shared
:class:`~repro.engine.XPathEngine` at 1 / 4 / 8 workers.

Where the speedup comes from — and does not come from: the evaluators
are pure Python, so under the GIL eight threads get no extra CPU.  What
scales is the engine's **single-flight request coalescing**: identical
requests in flight at the same moment share one evaluation, so on a hot
workload eight workers retire several requests per evaluation while one
worker can never coalesce anything (its in-flight window always holds a
single request).  The engine also drops the interpreter's thread-switch
interval for the duration of a concurrent batch so finished evaluations
reach their waiting followers quickly (see
``repro.engine.engine.CONCURRENT_SWITCH_INTERVAL``).

Acceptance floor (asserted on the chain-10k batch workload): ≥2×
throughput at 8 workers over 1 worker, no regression vs
:func:`~repro.planner.evaluate_many`, and results byte-identical to
serial evaluation at every worker count.
"""

import os
import time

import pytest

from benchmarks.conftest import report
from repro.engine import XPathEngine
from repro.planner import PlanCache, evaluate_many
from repro.xmlmodel import chain_document, wide_document

#: Hot queries per document shape: few distinct, individually expensive —
#: the shape request coalescing exists for.  Each is duplicated COPIES
#: times (interleaved) to form the serving workload.
_WORKLOADS = {
    "chain-10k": (
        lambda: chain_document(10_000),
        (
            "//a[ancestor::a]/descendant::a[not(child::b)]/ancestor::a[descendant::a]",
            "//a[child::a]/child::a[child::a]/child::a[child::a]"
            "/ancestor::a[descendant::a]/descendant::a[ancestor::a]",
            "//a[not(child::a)]/ancestor::a[descendant::a]",
        ),
    ),
    "wide-10k": (
        lambda: wide_document(10_000, tag="a"),
        (
            "//a[not(child::a)][preceding-sibling::a]",
            "//a[preceding-sibling::a and following-sibling::a]",
            "//a[following-sibling::a[following-sibling::a]]",
        ),
    ),
}

COPIES = 40
WORKER_COUNTS = (1, 4, 8)

#: Acceptance floors, asserted on the chain-10k batch workload.
SPEEDUP_FLOOR = 2.0          # 8 workers vs 1 worker
MANY_REGRESSION_CEILING = 1.10  # concurrent-8 time vs evaluate_many time

_STATE = {}


def _shape_state(shape):
    """One engine + registered document + warm plans per shape."""
    if shape not in _STATE:
        build, queries = _WORKLOADS[shape]
        engine = XPathEngine()
        handle = engine.add(build())
        engine.evaluate_batch([(query, handle) for query in queries])
        requests = [(query, handle) for query in queries] * COPIES
        _STATE[shape] = (engine, handle, queries, requests)
    return _STATE[shape]


def _best_time(function, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("shape", sorted(_WORKLOADS))
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_concurrent_throughput_timings(benchmark, shape, workers):
    """pytest-benchmark timings for the serving workload per worker count."""
    engine, _, _, requests = _shape_state(shape)
    benchmark(engine.evaluate_concurrent, requests, max_workers=workers)


@pytest.mark.parametrize("shape", sorted(_WORKLOADS))
def test_concurrent_results_identical_to_serial(shape):
    """Every worker count returns exactly the serial results, in order."""
    engine, handle, _, requests = _shape_state(shape)
    serial = [result.value for result in engine.evaluate_batch(requests)]
    legacy = evaluate_many(
        handle.document, [query for query, _ in requests], cache=PlanCache()
    )
    assert serial == legacy
    for workers in WORKER_COUNTS:
        concurrent = engine.evaluate_concurrent(requests, max_workers=workers)
        assert [result.value for result in concurrent] == serial, (shape, workers)


def test_concurrent_speedup_floor_vs_one_worker_and_evaluate_many():
    """Acceptance floor: ≥2× at 8 workers, no regression vs evaluate_many."""
    rows = []
    measured = {}
    for shape in sorted(_WORKLOADS):
        engine, handle, _, requests = _shape_state(shape)
        queries = [query for query, _ in requests]
        times = {
            workers: _best_time(
                lambda workers=workers: engine.evaluate_concurrent(
                    requests, max_workers=workers
                )
            )
            for workers in WORKER_COUNTS
        }
        many = _best_time(lambda: evaluate_many(handle.document, queries))
        coalesced = engine.stats().coalesced
        speedup = times[1] / times[8] if times[8] else float("inf")
        measured[shape] = (times, many, speedup)
        rows.append(
            f"{shape:>10}  "
            + "  ".join(f"{times[w] * 1e3:8.1f} ms" for w in WORKER_COUNTS)
            + f"  {many * 1e3:8.1f} ms  {speedup:5.2f}x  {coalesced:6d}"
        )
    header = (
        f"{'document':>10}  "
        + "  ".join(f"{f'{w} worker':>11}" for w in WORKER_COUNTS)
        + f"  {'eval_many':>11}  {'8w/1w':>6}  {'coal.':>6}"
    )
    report(
        f"E15 — concurrent serving throughput ({COPIES}×3 hot queries, "
        "shared XPathEngine)",
        "\n".join([header] + rows),
    )
    # Wall-clock ratios on shared CI runners are too noisy for a hard gate;
    # the identical-results assertions always run (see above), the floors
    # only off-CI (or when forced via BENCH_SPEEDUP_STRICT=1).
    strict = os.environ.get(
        "BENCH_SPEEDUP_STRICT", "0" if os.environ.get("CI") else "1"
    )
    if strict.lower() not in ("", "0", "false", "no"):
        times, many, speedup = measured["chain-10k"]
        assert speedup >= SPEEDUP_FLOOR, measured
        assert times[8] <= many * MANY_REGRESSION_CEILING, measured


def test_coalescing_is_the_mechanism():
    """The speedup is accounted for by coalesced requests, not magic."""
    build, queries = _WORKLOADS["chain-10k"]
    engine = XPathEngine()
    handle = engine.add(build())
    requests = [(query, handle) for query in queries] * COPIES
    engine.evaluate_concurrent(requests, max_workers=8)
    stats = engine.stats()
    evaluated = stats.queries - stats.coalesced
    assert stats.queries == len(requests)
    # Serial evaluation would have run every request; the concurrent batch
    # must have actually shared work for any speedup to be real.
    assert evaluated < len(requests)
