"""E18 — supervision overhead: a crashing pool vs. a healthy pool.

The fault-tolerance layer (``docs/serving.md`` → "Fault tolerance") must
be effectively free when nothing fails and cheap when workers die: a
restart costs a backoff sleep, a process spawn, a shard re-warm from the
mmap'd store, and the replay of the dead worker's in-flight window.
This experiment prices that on the E17 workload (30 distinct heavy
queries over 6 distinct documents, 4 workers):

* ``healthy``  — the pool as E17 runs it;
* ``crashing`` — the same pool with a fault armed in every worker (via
  the ``REPRO_SERVING_FAULT`` environment variable the workers read at
  startup): each worker process hard-exits on its 100th query, so the
  timed run restarts, re-warms and replays roughly once per 100 queries
  served — an extreme failure rate for any real deployment.

Acceptance gates:

* **fidelity** (always asserted, CI included): the crashing pool's
  results are byte-identical to in-process evaluation, and the run
  observed at least one restart (the fault genuinely fired);
* **overhead ceiling** (asserted when the host can express it: ≥4 CPU
  cores and strict mode — ``BENCH_SPEEDUP_STRICT=1``, the default
  off-CI): crashing-pool wall time ≤1.5× the healthy pool.
"""

import os
import time

import pytest

from benchmarks.bench_sharded_serving import _DOCUMENTS, _QUERY_TEMPLATES
from benchmarks.conftest import report
from repro.serving import ShardedPool
from repro.serving.worker import FAULT_ENV
from repro.store import CorpusStore, StoreKey

WORKERS = 4
#: Rounds of the 30-request E17 batch per timed run.  6 documents over 4
#: shards put ≥2 documents (≥10 queries/round) on some worker, so every
#: timed run pushes at least one worker past the crash threshold.
ROUNDS = 12
CRASH_EVERY = 100  # each worker incarnation exits on its Nth query
OVERHEAD_CEILING = 1.5
MIN_CORES_FOR_CEILING = 4

_STATE = {}


def _state():
    """One store + expected ids for the whole module (mirrors E17)."""
    if "store" not in _STATE:
        import tempfile

        from repro.engine import XPathEngine

        root = tempfile.mkdtemp(prefix="repro-e18-")
        store = CorpusStore(root)
        documents = {key: build() for key, build in _DOCUMENTS.items()}
        for key, document in documents.items():
            store.put(document, key=key)
        requests = [
            (template, key)
            for key in sorted(documents)
            for template in _QUERY_TEMPLATES
        ]
        engine = XPathEngine().attach_store(store)
        expected = [
            result.ids
            for result in engine.evaluate_batch(
                [(query, StoreKey(key)) for query, key in requests], ids=True
            )
        ]
        _STATE["store"] = store
        _STATE["requests"] = requests
        _STATE["expected"] = expected
    return _STATE


class _fault_armed:
    """Arm ``exit:query:N`` for worker processes started in the block.

    The environment is the one channel that reaches the workers the
    supervisor restarts mid-run, so the variable stays set for the whole
    measurement, not just pool construction.
    """

    def __enter__(self):
        self._saved = os.environ.get(FAULT_ENV)
        os.environ[FAULT_ENV] = f"exit:query:{CRASH_EVERY}"

    def __exit__(self, *exc_info):
        if self._saved is None:
            os.environ.pop(FAULT_ENV, None)
        else:
            os.environ[FAULT_ENV] = self._saved


def _run_rounds(pool, requests):
    out = []
    for _ in range(ROUNDS):
        out = [
            result.ids for result in pool.evaluate_batch(requests, ids=True)
        ]
    return out


def _timed_run(state, crashing):
    """Build a fresh pool, run the rounds, return (seconds, last ids, stats)."""
    if crashing:
        with _fault_armed():
            with ShardedPool(
                state["store"], workers=WORKERS, max_restarts=1_000
            ) as pool:
                start = time.perf_counter()
                ids = _run_rounds(pool, state["requests"])
                elapsed = time.perf_counter() - start
                stats = pool.stats()
    else:
        with ShardedPool(state["store"], workers=WORKERS) as pool:
            start = time.perf_counter()
            ids = _run_rounds(pool, state["requests"])
            elapsed = time.perf_counter() - start
            stats = pool.stats()
    return elapsed, ids, stats


def test_crashing_pool_results_identical_and_restarts_observed():
    """Fidelity gate (always asserted): replay is invisible to callers."""
    state = _state()
    _, ids, stats = _timed_run(state, crashing=True)
    assert ids == state["expected"]
    assert stats.restarts >= 1, "the injected fault never fired"
    assert stats.retries >= 0
    assert all(worker.alive for worker in stats.per_worker)


def test_fault_recovery_overhead_ceiling():
    """Overhead gate: crashes per ~100 queries cost ≤1.5× wall time."""
    state = _state()
    healthy = min(_timed_run(state, crashing=False)[0] for _ in range(2))
    crashing_times = []
    restarts = 0
    for _ in range(2):
        elapsed, ids, stats = _timed_run(state, crashing=True)
        assert ids == state["expected"]
        crashing_times.append(elapsed)
        restarts = max(restarts, stats.restarts)
    crashing = min(crashing_times)
    ratio = crashing / healthy if healthy else float("inf")
    queries = ROUNDS * len(state["requests"])
    report(
        f"E18 — fault recovery overhead ({queries} queries over "
        f"{WORKERS} workers, crash every {CRASH_EVERY} queries, "
        f"{os.cpu_count()} cores)",
        f"     healthy  {healthy * 1e3:8.1f} ms\n"
        f"    crashing  {crashing * 1e3:8.1f} ms ({restarts} restart(s))\n"
        f"  overhead    {ratio:5.2f}x (ceiling {OVERHEAD_CEILING}x, gated: "
        f"needs >= {MIN_CORES_FOR_CEILING} cores + strict mode)",
    )
    assert restarts >= 1, "the injected fault never fired"
    strict = os.environ.get(
        "BENCH_SPEEDUP_STRICT", "0" if os.environ.get("CI") else "1"
    )
    if strict.lower() in ("", "0", "false", "no"):
        return
    if (os.cpu_count() or 1) < MIN_CORES_FOR_CEILING:
        pytest.skip(
            f"host has {os.cpu_count()} core(s); the {OVERHEAD_CEILING}x "
            f"ceiling needs at least {MIN_CORES_FOR_CEILING}"
        )
    assert ratio <= OVERHEAD_CEILING, (healthy, crashing_times)
