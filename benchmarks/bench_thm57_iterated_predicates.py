"""E7 — Theorem 5.7 / Corollary 5.8: iterated predicates restore P-hardness.

The bench runs the same circuit workload as E3 through the *negation-free*
Theorem 5.7 reduction (which encodes ``not`` via ``last()`` over an
iterated predicate sequence of length 2) and checks that the two reductions
agree with the circuit value.  Reported sizes show the modest constant
overhead of the Theorem 5.7 document (the extra ``w`` children) and query.
"""

import pytest

from benchmarks.conftest import report
from repro.circuits import (
    carry_assignment,
    carry_circuit,
    random_assignment,
    random_monotone_circuit,
)
from repro.evaluation import ContextValueTableEvaluator
from repro.fragments import violations_pwf
from repro.reductions import reduce_circuit_to_core_xpath, reduce_circuit_to_pwf_iterated

GATE_COUNTS = (3, 6, 9)


def _evaluate(num_gates: int, seed: int = 4) -> bool:
    circuit = random_monotone_circuit(num_inputs=4, num_gates=num_gates, seed=seed)
    assignment = random_assignment(circuit, seed=seed)
    instance = reduce_circuit_to_pwf_iterated(circuit, assignment)
    result = bool(
        ContextValueTableEvaluator(instance.document).evaluate_nodes(instance.query)
    )
    assert result == circuit.value(assignment)
    return result


@pytest.mark.parametrize("num_gates", GATE_COUNTS)
def test_pwf_iterated_reduction_evaluation(benchmark, num_gates):
    """End-to-end Theorem 5.7 reduction + DP evaluation for growing circuits."""
    benchmark(_evaluate, num_gates)


def test_carry_circuit_via_both_reductions(benchmark):
    """The Figure 2 circuit through Theorem 3.2 and Theorem 5.7 must agree."""
    circuit = carry_circuit()
    assignment = carry_assignment(True, False, True, True)

    def run():
        with_negation = reduce_circuit_to_core_xpath(circuit, assignment)
        without_negation = reduce_circuit_to_pwf_iterated(circuit, assignment)
        first = bool(
            ContextValueTableEvaluator(with_negation.document).evaluate_nodes(
                with_negation.query
            )
        )
        second = bool(
            ContextValueTableEvaluator(without_negation.document).evaluate_nodes(
                without_negation.query
            )
        )
        return first, second, with_negation, without_negation

    first, second, with_negation, without_negation = benchmark(run)
    assert first == second == circuit.value(assignment)
    only_iterated = [
        violation
        for violation in violations_pwf(without_negation.query)
        if "iterated" in violation
    ]
    assert only_iterated, "the Theorem 5.7 query must rely on iterated predicates"
    body = [
        "reduction        |D|   |Q|   uses not()  iterated predicates",
        f"Theorem 3.2    {with_negation.document_size:>5} {with_negation.query_size:>5}   yes         no",
        f"Theorem 5.7    {without_negation.document_size:>5} {without_negation.query_size:>5}   no          yes (length 2, Cor 5.8)",
    ]
    report("E7 / Theorem 5.7 — negation encoded by iterated predicates", "\n".join(body))
