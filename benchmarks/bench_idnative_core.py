"""E14 — id-native Core XPath evaluation vs. the PR-1 node-set path.

Both evaluators implement the same O(|D|·|Q|) set-at-a-time algorithm
(Proposition 2.7, second part); they differ only in the node-set
representation.  :class:`NodeSetCoreXPathEvaluator` (the PR-1 baseline)
keeps frontiers and condition sets as Python sets of node objects and
sorts the final result; :class:`CoreXPathEvaluator` keeps them as
:class:`~repro.xmlmodel.idset.IdSet` values over the
:class:`~repro.xmlmodel.index.DocumentIndex` — sorted id arrays or, above
the density threshold, bitmasks whose boolean algebra runs at C speed —
and materialises nodes exactly once, already in document order.

This bench measures that representation gap on 10k-node documents (deep
chain, wide flat tree, complete binary tree) over a mixed Core XPath
workload, and asserts the acceptance floor: on both the 10k chain and the
10k wide document, the id-native evaluator must finish the workload at
least 2× faster than the node-set baseline.
"""

import os
import time

import pytest

from benchmarks.conftest import report
from repro.evaluation.core import CoreXPathEvaluator
from repro.evaluation.core_nodeset import NodeSetCoreXPathEvaluator
from repro.xmlmodel import chain_document, complete_tree_document, wide_document

_DOCUMENTS = {
    "chain-10k": lambda: chain_document(10_000),
    "wide-10k": lambda: wide_document(10_000, tag="a"),
    "complete-2x13": lambda: complete_tree_document(2, 13),
}

#: A mixed Core XPath workload: interval axes, condition paths through
#: inverse axes, negation (a full-universe complement per document), and
#: conjunction — the operations whose representation dominates run time.
_WORKLOAD = (
    "//a[child::a]",
    "//a[not(child::a)]",
    "/descendant::a[child::a and not(child::b)]",
    "//a/ancestor::a",
    "//a[descendant::b]",
    "//b[ancestor::a]/descendant::c",
    "//a[not(following-sibling::a)]",
)

#: Acceptance floor asserted on the 10k-node shapes.
SPEEDUP_FLOOR = 2.0

_DOCUMENT_CACHE = {}


def _document(shape):
    if shape not in _DOCUMENT_CACHE:
        document = _DOCUMENTS[shape]()
        document.index  # prebuild: the index is shared per-document state
        _DOCUMENT_CACHE[shape] = document
    return _DOCUMENT_CACHE[shape]


def _run_workload(evaluator_class, document):
    # A fresh evaluator per run so condition-set caches are not carried
    # between timed runs; within a run they work exactly as in production.
    evaluator = evaluator_class(document)
    return [evaluator.evaluate_nodes(query) for query in _WORKLOAD]


def _best_time(function, repeats=7):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("shape", sorted(_DOCUMENTS))
def test_idnative_workload_timings(benchmark, shape):
    """pytest-benchmark timings for the id-native evaluator."""
    document = _document(shape)
    benchmark(_run_workload, CoreXPathEvaluator, document)


@pytest.mark.parametrize("shape", sorted(_DOCUMENTS))
def test_nodeset_workload_timings(benchmark, shape):
    """The PR-1 node-set baseline on the same workload."""
    document = _document(shape)
    benchmark(_run_workload, NodeSetCoreXPathEvaluator, document)


def test_idnative_speedup_floor_and_agreement():
    """Acceptance floor: ≥2× on both 10k-node shapes, identical results everywhere."""
    rows = []
    workload_ratios = {}
    for shape in sorted(_DOCUMENTS):
        document = _document(shape)
        idnative_results = _run_workload(CoreXPathEvaluator, document)
        nodeset_results = _run_workload(NodeSetCoreXPathEvaluator, document)
        for query, got, expected in zip(_WORKLOAD, idnative_results, nodeset_results):
            assert got == expected, (shape, query)
        idnative = _best_time(lambda: _run_workload(CoreXPathEvaluator, document))
        nodeset = _best_time(
            lambda: _run_workload(NodeSetCoreXPathEvaluator, document)
        )
        ratio = nodeset / idnative if idnative else float("inf")
        workload_ratios[shape] = ratio
        rows.append(
            f"{shape:>14}  {idnative * 1e3:9.2f} ms  {nodeset * 1e3:9.2f} ms  "
            f"{ratio:6.1f}x"
        )
    header = f"{'document':>14}  {'id-native':>12}  {'node-set':>12}  {'ratio':>7}"
    report(
        "E14 — id-native vs node-set Core XPath (7-query workload)",
        "\n".join([header] + rows),
    )
    # Wall-clock ratios on shared CI runners are too noisy for a hard gate;
    # the agreement asserts above always run, the floor only off-CI (or when
    # forced via BENCH_SPEEDUP_STRICT=1).
    strict = os.environ.get(
        "BENCH_SPEEDUP_STRICT", "0" if os.environ.get("CI") else "1"
    )
    if strict.lower() not in ("", "0", "false", "no"):
        assert workload_ratios["chain-10k"] >= SPEEDUP_FLOOR, workload_ratios
        assert workload_ratios["wide-10k"] >= SPEEDUP_FLOOR, workload_ratios


def test_idnative_per_query_agreement_with_ids():
    """evaluate_ids and evaluate_nodes agree (ids are document-order ranks)."""
    for shape in sorted(_DOCUMENTS):
        document = _document(shape)
        evaluator = CoreXPathEvaluator(document)
        index = document.index
        for query in _WORKLOAD:
            ids = evaluator.evaluate_ids(query)
            assert ids == sorted(ids)
            assert index.ids_to_node_list(ids) == evaluator.evaluate_nodes(query)
