"""Pytest bootstrap: make the in-tree ``src`` layout importable.

The offline environment for this reproduction has no ``wheel`` package, so
``pip install -e .`` cannot build the PEP 660 editable wheel.  Adding the
``src`` directory to ``sys.path`` here gives tests, benchmarks and examples
the same import behaviour an editable install would provide.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
