"""Pytest bootstrap: make the in-tree ``src`` layout importable.

The package is installable (``pip install -e .`` via ``pyproject.toml``,
which is what CI does), but the test suite must also run straight from a
checkout — including offline environments where the PEP 660 editable
wheel cannot be built.  Adding ``src`` to ``sys.path`` here gives tests,
benchmarks and examples the same import behaviour either way; an
installed copy simply shadows nothing because this path comes first.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
