"""The exponential-versus-polynomial contrast from the paper's introduction.

"All publicly available XPath engines take time exponential in the size of
the query" — because they follow the functional semantics literally.  This
example runs the naive (functional) evaluator and the context-value-table
dynamic program on the same caterpillar workload and prints how their
operation counts grow as the query gains steps.

Run with ``python examples/exponential_blowup.py``.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench import caterpillar_workload  # noqa: E402
from repro.complexity import ScalingSeries  # noqa: E402
from repro.evaluation import ContextValueTableEvaluator, CoreXPathEvaluator, NaiveEvaluator  # noqa: E402


def main() -> None:
    naive_series = ScalingSeries("naive functional evaluator", "query steps", "operations")
    cvt_series = ScalingSeries("context-value-table DP", "query steps", "operations")
    print(f"{'steps':>6} {'|D|':>5} {'naive ops':>12} {'CVT ops':>10} {'core axis apps':>15} {'agree':>6}")
    for steps in range(2, 13):
        document, query = caterpillar_workload(steps)
        naive = NaiveEvaluator(document)
        cvt = ContextValueTableEvaluator(document)
        core = CoreXPathEvaluator(document)
        naive_result = naive.evaluate_nodes(query)
        cvt_result = cvt.evaluate_nodes(query)
        core_result = core.evaluate_nodes(query)
        agree = (
            [n.order for n in naive_result]
            == [n.order for n in cvt_result]
            == [n.order for n in core_result]
        )
        naive_series.add(steps, naive.operations)
        cvt_series.add(steps, cvt.operations)
        print(
            f"{steps:>6} {document.size:>5} {naive.operations:>12} {cvt.operations:>10} "
            f"{core.axis_applications:>15} {str(agree):>6}"
        )
    print()
    print(f"naive growth per added step : ~x{naive_series.exponential_base():.2f} (exponential)")
    print(f"DP growth exponent          : size^{cvt_series.power_law_exponent():.2f} (polynomial)")


if __name__ == "__main__":
    main()
