"""Figure 1 reproduced: classify realistic queries into the paper's fragments.

For a collection of auction-site queries (the kind of workload XMark made
standard), the example reports the most specific fragment each query falls
into and the combined complexity Figure 1 assigns to that fragment, then
prints the fragment/complexity lattice itself.

Run with ``python examples/fragment_lattice.py``.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench import representative_queries  # noqa: E402
from repro.complexity import render_figure1  # noqa: E402
from repro.evaluation import evaluate  # noqa: E402
from repro.fragments import classify  # noqa: E402
from repro.xmlmodel import auction_document  # noqa: E402


def main() -> None:
    document = auction_document(sellers=6, items_per_seller=5)
    print(f"workload document: auction site with {document.size} nodes\n")

    print(f"{'query':<62} {'fragment':<22} combined complexity")
    print("-" * 110)
    for expected_fragment, queries in representative_queries().items():
        for query in queries:
            classification = classify(query)
            result = evaluate(query, document)
            count = len(result) if isinstance(result, list) else result
            print(
                f"{query:<62} {classification.most_specific:<22} "
                f"{classification.combined_complexity}   (result: {count})"
            )
            assert classification.most_specific == expected_fragment
    print()
    print(render_figure1())


if __name__ == "__main__":
    main()
