"""Quickstart: parse, evaluate with every engine, plan with ``engine="auto"``.

Run with ``python examples/quickstart.py``.  The last section shows the
query planner: ``engine="auto"`` classifies each query once, picks the
cheapest sound evaluator, and caches the compiled plan — the plan-cache
counters at the end show the repeat queries being served from cache.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import classify, evaluate, evaluate_nodes, get_plan, parse_xml  # noqa: E402
from repro.planner import default_plan_cache  # noqa: E402

LIBRARY_XML = """
<library city="Vienna">
  <shelf topic="databases">
    <book year="2003"><title>The Complexity of XPath Query Evaluation</title></book>
    <book year="2002"><title>Efficient Algorithms for Processing XPath Queries</title></book>
  </shelf>
  <shelf topic="logic">
    <book year="1994"><title>Computational Complexity</title></book>
  </shelf>
</library>
"""


def main() -> None:
    document = parse_xml(LIBRARY_XML)
    print(f"Parsed document with {document.size} nodes\n")

    queries = [
        "/descendant::book[child::title]",
        "//shelf[not(child::book[attribute::year = '1994'])]",
        "count(//book)",
        "/child::library/child::shelf[position() = last()]/child::book",
    ]
    for query in queries:
        result = evaluate(query, document)
        if isinstance(result, list):
            rendered = [node.name() or node.node_type.value for node in result]
        else:
            rendered = result
        classification = classify(query)
        print(f"query     : {query}")
        print(f"fragment  : {classification.most_specific} "
              f"({classification.combined_complexity} combined complexity)")
        print(f"result    : {rendered}\n")

    # The same node-set query evaluated by each engine that accepts it.
    core_query = "/descendant::book[child::title]"
    for engine in ("cvt", "naive", "core", "singleton"):
        nodes = evaluate_nodes(core_query, document, engine=engine)
        years = [node.get_attribute("year") for node in nodes]
        print(f"{engine:<10} engine selects books from years {years}")

    # engine="auto": classify once, pick the cheapest sound engine, cache
    # the plan.  Re-running the earlier queries now hits the plan cache.
    print("\nauto-dispatch (query -> selected engine):")
    for query in queries:
        evaluate(query, document, engine="auto")
        plan = get_plan(query)
        print(f"  {plan.engine:<5} <- {query}")

    stats = default_plan_cache().stats()
    print(
        f"\nplan cache: {stats.size}/{stats.maxsize} plans, "
        f"{stats.hits} hit(s), {stats.misses} miss(es), "
        f"{stats.evictions} eviction(s), hit rate {stats.hit_rate:.0%}"
    )


if __name__ == "__main__":
    main()
