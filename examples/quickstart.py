"""Quickstart: the ``XPathEngine`` session façade, engines, and planning.

Run with ``python examples/quickstart.py``.  The engine is the one
stateful entry point: it registers documents (index forced once), plans
queries through its own LRU cache, pools evaluators per document, and
answers with ``QueryResult`` objects carrying the payload plus metadata
(engine chosen, fragment, cache hit, wall time).  The final section
shows the batch/concurrent serving layer and the engine's counters.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import XPathEngine, evaluate_nodes, parse_xml  # noqa: E402

LIBRARY_XML = """
<library city="Vienna">
  <shelf topic="databases">
    <book year="2003"><title>The Complexity of XPath Query Evaluation</title></book>
    <book year="2002"><title>Efficient Algorithms for Processing XPath Queries</title></book>
  </shelf>
  <shelf topic="logic">
    <book year="1994"><title>Computational Complexity</title></book>
  </shelf>
</library>
"""


def main() -> None:
    engine = XPathEngine()
    doc = engine.add(LIBRARY_XML)
    print(f"Registered document with {doc.size} nodes\n")

    queries = [
        "/descendant::book[child::title]",
        "//shelf[not(child::book[attribute::year = '1994'])]",
        "count(//book)",
        "/child::library/child::shelf[position() = last()]/child::book",
    ]
    for query in queries:
        result = engine.evaluate(query, doc)
        if result.is_node_set:
            rendered = [node.name() or node.node_type.value for node in result.nodes]
        else:
            rendered = result.value
        print(f"query     : {query}")
        print(f"fragment  : {result.classification.most_specific} "
              f"({result.classification.combined_complexity} combined complexity)")
        print(f"engine    : {result.engine} "
              f"({'plan cache hit' if result.cache_hit else 'compiled'}, "
              f"{result.wall_time * 1e3:.2f} ms)")
        print(f"result    : {rendered}\n")

    # The same node-set query evaluated by each engine that accepts it —
    # both through the engine façade and the legacy free function.
    core_query = "/descendant::book[child::title]"
    document = parse_xml(LIBRARY_XML)
    for kind in ("cvt", "naive", "core", "singleton"):
        nodes = evaluate_nodes(core_query, document, engine=kind)
        years = [node.get_attribute("year") for node in nodes]
        print(f"{kind:<10} engine selects books from years {years}")

    # Batch + concurrent serving: one shared registry / plan cache /
    # evaluator pool; identical requests in flight coalesce onto one
    # evaluation (r.coalesced marks the requests that shared a result).
    requests = [(query, doc) for query in queries] * 8
    serial = engine.evaluate_batch(requests)
    concurrent = engine.evaluate_concurrent(requests, max_workers=8)
    identical = all(
        a.value == b.value for a, b in zip(serial, concurrent)
    )
    print(f"\nconcurrent batch of {len(requests)}: identical to serial: {identical}, "
          f"{sum(r.coalesced for r in concurrent)} coalesced")

    print("\nengine counters after the session:")
    for line in engine.stats().describe().splitlines():
        print(f"  {line}")


if __name__ == "__main__":
    main()
