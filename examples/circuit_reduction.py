"""Theorem 3.2 end-to-end: the Figure 2 carry-bit circuit evaluated *by an XPath query*.

The example reproduces Figures 2 and 3: it builds the 2-bit full-adder
carry circuit, prints its layered serialisation, applies the Theorem 3.2
reduction for every one of the 16 input combinations and shows that the
produced Core XPath query selects a node exactly when the addition
overflows.

Run with ``python examples/circuit_reduction.py``.
"""

import itertools
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.circuits import carry_assignment, carry_circuit, expected_carry, render_layering  # noqa: E402
from repro.evaluation import query_selects  # noqa: E402
from repro.reductions import reduce_circuit_to_core_xpath  # noqa: E402


def main() -> None:
    circuit = carry_circuit()
    print("Figure 2: the 2-bit full-adder carry-bit circuit")
    print(f"  inputs: {circuit.input_names}   internal gates: {circuit.internal_names}")
    print(f"  depth: {circuit.depth()}   output gate: {circuit.output}\n")

    print("Figure 3 (textual): " + render_layering(circuit) + "\n")

    sample = reduce_circuit_to_core_xpath(circuit, carry_assignment(True, False, True, True))
    print("Theorem 3.2 instance for inputs a1a0=10, b1b0=11:")
    print(f"  document size |D| = {sample.document_size}")
    print(f"  query size    |Q| = {sample.query_size}")
    print(f"  query (truncated): {sample.query_text()[:120]}...\n")

    print("carry truth table, recomputed via Core XPath evaluation:")
    print("  a1 a0 b1 b0 | circuit | XPath query non-empty")
    all_match = True
    for a1, a0, b1, b0 in itertools.product([False, True], repeat=4):
        instance = reduce_circuit_to_core_xpath(circuit, carry_assignment(a1, a0, b1, b0))
        via_xpath = query_selects(instance.query, instance.document, engine="core")
        truth = expected_carry(a1, a0, b1, b0)
        all_match &= via_xpath == truth == instance.expected
        print(
            f"   {int(a1)}  {int(a0)}  {int(b1)}  {int(b0)} |"
            f"   {str(truth):<5} | {via_xpath}"
        )
    print(f"\nall 16 rows agree with the adder semantics: {all_match}")


if __name__ == "__main__":
    main()
