"""Parallel evaluation of positive queries (Theorems 4.1 / 5.5, Remark 5.6).

Positive Core XPath queries are LOGCFL-complete, hence evaluable by shallow
semi-unbounded circuits.  This example compiles positive auction queries
into such circuits and reports the idealised parallel time (circuit depth)
against the total work (circuit size) and the sequential operation count of
the dynamic-programming evaluator.

Run with ``python examples/parallel_evaluation.py``.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.evaluation import ContextValueTableEvaluator  # noqa: E402
from repro.fragments import is_positive_core_xpath  # noqa: E402
from repro.parallel import compile_positive_query, evaluate_in_layers  # noqa: E402
from repro.xmlmodel import auction_document  # noqa: E402

QUERIES = [
    "/descendant::open_auction[child::bidder]",
    "/descendant::open_auction[child::bidder and descendant::increase]",
    "//person[descendant::name or following-sibling::person]",
    "/descendant::item[parent::open_auction[child::bidder]]",
]


def main() -> None:
    document = auction_document(sellers=8, items_per_seller=6)
    print(f"document: auction site with {document.size} nodes\n")
    header = (
        f"{'query':<58} {'sel':>4} {'depth':>6} {'gates':>7} "
        f"{'width':>6} {'speedup':>8} {'seq ops':>8}"
    )
    print(header)
    print("-" * len(header))
    for query in QUERIES:
        assert is_positive_core_xpath(query), query
        compiled = compile_positive_query(query, document)
        report = evaluate_in_layers(compiled)
        sequential = ContextValueTableEvaluator(document)
        selected = sequential.evaluate_nodes(query)
        assert [n.order for n in selected] == [n.order for n in report.selected]
        print(
            f"{query:<58} {len(report.selected):>4} {report.depth:>6} {report.size:>7} "
            f"{report.max_width:>6} {report.speedup_bound:>8.1f} {sequential.operations:>8}"
        )
    print(
        "\nDepth stays small while total work grows with the document — the"
        "\nwork can be spread over 'width' processors, which is the"
        "\nparallelizability the LOGCFL bound promises (Remark 5.6)."
    )


if __name__ == "__main__":
    main()
