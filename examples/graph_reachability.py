"""Theorem 4.3 end-to-end: graph reachability decided by a predicate-free XPath query.

Reproduces Figure 5: the four-vertex example graph, its (transposed)
adjacency matrix, and the tree encoding; then computes the full
reachability matrix twice — once by breadth-first search and once by
evaluating the PF query of Theorem 4.3 — and checks that they agree.

Run with ``python examples/graph_reachability.py``.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.evaluation import query_selects  # noqa: E402
from repro.fragments import classify  # noqa: E402
from repro.graphs import figure5_graph, is_reachable  # noqa: E402
from repro.reductions import reduce_reachability_to_pf  # noqa: E402


def main() -> None:
    graph = figure5_graph()
    print("Figure 5(a): the example graph")
    print(f"  edges: {[(s + 1, t + 1) for s, t in graph.edges()]}\n")

    print("Figure 5(b): transposed adjacency matrix")
    for row in graph.adjacency_matrix(transposed=True):
        print("   " + " ".join(str(bit) for bit in row))
    print()

    sample = reduce_reachability_to_pf(graph, 0, 3)
    print("Figure 5(c): tree encoding (one instance)")
    print(f"  document size |D| = {sample.document_size}")
    print(f"  query size    |Q| = {sample.query_size} (steps, no predicates)")
    print(f"  query fragment    = {classify(sample.query).most_specific}\n")

    print("reachability matrix (rows = source, columns = target):")
    print("            " + "  ".join(f"v{j + 1}" for j in range(graph.num_vertices)))
    agree = True
    for source in range(graph.num_vertices):
        row = []
        for target in range(graph.num_vertices):
            instance = reduce_reachability_to_pf(graph, source, target)
            via_xpath = query_selects(instance.query, instance.document, engine="core")
            via_bfs = is_reachable(graph, source, target)
            agree &= via_xpath == via_bfs
            row.append("1" if via_xpath else ".")
        print(f"  from v{source + 1}:    " + "   ".join(row))
    print(f"\nXPath-computed reachability agrees with BFS: {agree}")


if __name__ == "__main__":
    main()
